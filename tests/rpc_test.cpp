// Tests for the RPC message stubs: request/reply marshalling, layout
// arithmetic, gather construction and encryption-header validation.
#include <gtest/gtest.h>

#include <cstring>

#include "buffer/byte_buffer.h"
#include "core/fused_pipeline.h"
#include "rpc/messages.h"
#include "util/endian.h"
#include "util/rng.h"

namespace ilp::rpc {
namespace {

TEST(Request, MarshalUnmarshalRoundTrip) {
    file_request in;
    in.request_id = 42;
    in.filename = "data/file.bin";
    in.copy_count = 3;
    in.max_reply_payload = 996;

    alignas(8) std::byte wire[256];
    const auto len = marshal_request(in, wire);
    ASSERT_TRUE(len.has_value());
    EXPECT_EQ(*len % core::encryption_unit_bytes, 0u);

    const auto out = unmarshal_request({wire, *len});
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(out->request_id, in.request_id);
    EXPECT_EQ(out->filename, in.filename);
    EXPECT_EQ(out->copy_count, in.copy_count);
    EXPECT_EQ(out->max_reply_payload, in.max_reply_payload);
}

TEST(Request, LengthFieldMatchesMarshalledBytes) {
    file_request in;
    in.filename = "x";
    alignas(8) std::byte wire[128];
    const auto len = marshal_request(in, wire);
    ASSERT_TRUE(len.has_value());
    const std::uint32_t length_field = load_be32(wire);
    EXPECT_EQ(align_up(length_field, core::encryption_unit_bytes), *len);
}

TEST(Request, RejectsOversizedFilename) {
    file_request in;
    in.filename = std::string(300, 'a');
    alignas(8) std::byte wire[1024];
    EXPECT_FALSE(marshal_request(in, wire).has_value());
}

TEST(Request, UnmarshalRejectsCorruptType) {
    file_request in;
    in.filename = "f";
    alignas(8) std::byte wire[128];
    const auto len = marshal_request(in, wire);
    ASSERT_TRUE(len.has_value());
    store_be32(wire + 4, 99);  // bad msg_type
    EXPECT_FALSE(unmarshal_request({wire, *len}).has_value());
}

TEST(Request, UnmarshalRejectsBadLength) {
    file_request in;
    in.filename = "f";
    alignas(8) std::byte wire[128];
    const auto len = marshal_request(in, wire);
    ASSERT_TRUE(len.has_value());
    store_be32(wire, 4);  // claims empty message
    EXPECT_FALSE(unmarshal_request({wire, *len}).has_value());
}

TEST(ReplyLayout, SizesAreConsistent) {
    for (const std::size_t payload : {0u, 1u, 3u, 4u, 100u, 996u, 1000u}) {
        const reply_layout layout = layout_reply(payload);
        EXPECT_EQ(layout.payload_bytes, payload);
        EXPECT_GE(layout.marshalled_bytes,
                  reply_payload_offset + payload);
        EXPECT_EQ(layout.wire_bytes % core::encryption_unit_bytes, 0u);
        EXPECT_EQ(layout.plan.total_bytes, layout.wire_bytes);
    }
}

TEST(ReplyLayout, MaxPayloadForWireIsTight) {
    for (const std::size_t budget : {256u, 512u, 768u, 1024u, 1280u}) {
        const std::size_t payload = max_payload_for_wire(budget);
        ASSERT_GT(payload, 0u);
        EXPECT_LE(layout_reply(payload).wire_bytes, budget);
        // One more byte of payload would not fit (or wire is exactly at
        // budget already).
        EXPECT_GT(layout_reply(payload + 1).wire_bytes, budget);
    }
}

TEST(ReplyLayout, TinyBudgetYieldsZero) {
    EXPECT_EQ(max_payload_for_wire(16), 0u);
}

TEST(Reply, GatherProducesExactWireImage) {
    rng r(5);
    std::vector<std::byte> payload(100);
    r.fill(payload);

    reply_header h;
    h.request_id = 9;
    h.copy_index = 1;
    h.offset = 4096;
    h.total_bytes = 15 * 1024;

    reply_staging staging;
    const core::gather_source src = make_reply_source(h, payload, staging);
    const reply_layout layout = layout_reply(payload.size());
    ASSERT_EQ(src.total_size(), layout.wire_bytes);

    byte_buffer wire(layout.wire_bytes);
    core::fused_pipeline<> copy_loop;
    copy_loop.run(memsim::direct_memory{}, src,
                  core::span_dest(wire.span()));

    // Encryption header.
    EXPECT_EQ(load_be32(wire.data()), layout.marshalled_bytes);
    // RPC header words.
    EXPECT_EQ(load_be32(wire.data() + 4), msg_type_reply);
    EXPECT_EQ(load_be32(wire.data() + 8), h.request_id);
    EXPECT_EQ(load_be32(wire.data() + 12), h.copy_index);
    EXPECT_EQ(load_be32(wire.data() + 16), h.offset);
    EXPECT_EQ(load_be32(wire.data() + 20), h.total_bytes);
    // Opaque length + payload.
    EXPECT_EQ(load_be32(wire.data() + 24), payload.size());
    EXPECT_EQ(std::memcmp(wire.data() + 28, payload.data(), payload.size()),
              0);
    // Padding is zero.
    for (std::size_t i = 28 + payload.size(); i < layout.wire_bytes; ++i) {
        EXPECT_EQ(wire.data()[i], std::byte{0});
    }

    // And the header region decodes back.
    const auto decoded = decode_reply_header(wire.subspan(4, 20));
    ASSERT_TRUE(decoded.has_value());
    EXPECT_EQ(decoded->request_id, h.request_id);
    EXPECT_EQ(decoded->offset, h.offset);
}

TEST(EncHeader, Validation) {
    EXPECT_TRUE(validate_enc_header(28, 32).has_value());
    EXPECT_EQ(validate_enc_header(28, 32).value(), 28u);
    EXPECT_TRUE(validate_enc_header(32, 32).has_value());
    EXPECT_FALSE(validate_enc_header(28, 40).has_value());  // wrong padding
    EXPECT_FALSE(validate_enc_header(2, 8).has_value());    // below minimum
    EXPECT_FALSE(validate_enc_header(0, 0).has_value());
}

}  // namespace
}  // namespace ilp::rpc
