// Tests for the kernel-part port demultiplexer: routing, drops, and two
// concurrent TCP connections multiplexed over one shared datagram pipe —
// the paper's deployment shape (one kernel part, one user-level TCP
// instance per application).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "checksum/internet_checksum.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "net/demux.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace ilp::net {
namespace {

using memsim::direct_memory;

std::vector<std::byte> segment_to(std::uint16_t dst_port,
                                  std::size_t payload = 0) {
    std::vector<std::byte> packet(tcp::header_bytes + payload);
    tcp::header_fields h;
    h.src_port = 1;
    h.dst_port = dst_port;
    tcp::serialize_header(h, packet);
    return packet;
}

TEST(PortDemux, RoutesByDestinationPort) {
    port_demux demux;
    int a = 0, b = 0;
    ASSERT_TRUE(demux.bind(1000, [&](std::span<const std::byte>) { ++a; }));
    ASSERT_TRUE(demux.bind(2000, [&](std::span<const std::byte>) { ++b; }));
    EXPECT_EQ(demux.bound_ports(), 2u);

    demux.dispatch(segment_to(1000));
    demux.dispatch(segment_to(2000));
    demux.dispatch(segment_to(2000));
    EXPECT_EQ(a, 1);
    EXPECT_EQ(b, 2);
    EXPECT_EQ(demux.dispatched(), 3u);
}

TEST(PortDemux, DropsUnboundAndMalformed) {
    port_demux demux;
    ASSERT_TRUE(demux.bind(1000, [](std::span<const std::byte>) {}));
    demux.dispatch(segment_to(4242));  // nobody listening
    const std::byte runt[5] = {};
    demux.dispatch({runt, 5});
    EXPECT_EQ(demux.no_listener_drops(), 1u);
    EXPECT_EQ(demux.malformed(), 1u);
    EXPECT_EQ(demux.dispatched(), 0u);
}

TEST(PortDemux, UnbindStopsDelivery) {
    port_demux demux;
    int count = 0;
    ASSERT_TRUE(
        demux.bind(1000, [&](std::span<const std::byte>) { ++count; }));
    demux.dispatch(segment_to(1000));
    demux.unbind(1000);
    demux.dispatch(segment_to(1000));
    EXPECT_EQ(count, 1);
    EXPECT_EQ(demux.no_listener_drops(), 1u);
}

TEST(PortDemux, RejectsDoubleBindKeepsFirstListener) {
    port_demux demux;
    int first = 0, second = 0;
    ASSERT_TRUE(demux.bind(1000, [&](std::span<const std::byte>) { ++first; }));
    // A second bind on a live port must not hijack the existing flow.
    EXPECT_FALSE(
        demux.bind(1000, [&](std::span<const std::byte>) { ++second; }));
    EXPECT_EQ(demux.bind_conflicts(), 1u);
    EXPECT_EQ(demux.bound_ports(), 1u);
    demux.dispatch(segment_to(1000));
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 0);
}

TEST(PortDemux, RebindReplacesHandlerExplicitly) {
    port_demux demux;
    int first = 0, second = 0;
    ASSERT_TRUE(demux.bind(1000, [&](std::span<const std::byte>) { ++first; }));
    demux.rebind(1000, [&](std::span<const std::byte>) { ++second; });
    demux.dispatch(segment_to(1000));
    EXPECT_EQ(first, 0);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(demux.bind_conflicts(), 0u);  // rebind is not a conflict
    // rebind on a free port is an ordinary bind.
    demux.rebind(2000, [&](std::span<const std::byte>) { ++second; });
    EXPECT_EQ(demux.bound_ports(), 2u);
}

TEST(PortAllocator, ExhaustionIsExplicitAndReleaseRecycles) {
    port_allocator ports(100, 103);
    EXPECT_EQ(ports.capacity(), 4u);
    std::vector<std::uint16_t> got;
    for (int i = 0; i < 4; ++i) {
        const auto p = ports.allocate();
        ASSERT_TRUE(p.has_value());
        got.push_back(*p);
    }
    EXPECT_EQ(ports.allocated(), 4u);
    // Range exhausted: explicit error, not a duplicate port.
    EXPECT_FALSE(ports.allocate().has_value());

    // Released ports are handed out again (LIFO).
    ports.release(got[1]);
    ports.release(got[2]);
    const auto again = ports.allocate();
    ASSERT_TRUE(again.has_value());
    EXPECT_EQ(*again, got[2]);
    EXPECT_EQ(ports.allocated(), 3u);
}

TEST(PortAllocator, HandsOutDistinctPortsAcrossChurn) {
    port_allocator ports(10, 29);
    std::vector<std::uint16_t> live;
    for (int round = 0; round < 8; ++round) {
        while (ports.allocated() < 10) {
            const auto p = ports.allocate();
            ASSERT_TRUE(p.has_value());
            for (const std::uint16_t q : live) ASSERT_NE(*p, q);
            live.push_back(*p);
        }
        // Tear down half the "flows".
        for (int i = 0; i < 5; ++i) {
            ports.release(live.back());
            live.pop_back();
        }
    }
}

// High-churn microbench assertion: the allocator promises strictly O(1),
// allocation-free operation after construction.  The structural witness is
// the free list's capacity — reserved for the whole range in the ctor — which
// must survive any churn pattern unchanged (a push_back that grew the vector
// would change it).  The busy bitmap keeps double-release detection O(1).
TEST(PortAllocator, ChurnNeverReallocatesTheFreeList) {
    port_allocator ports(1'000, 1'999);  // 1000-port range
    const std::size_t reserved = ports.free_list_capacity();
    EXPECT_GE(reserved, ports.capacity());

    std::vector<std::uint16_t> live;
    live.reserve(ports.capacity());
    // Fill the whole range, drain it completely, then churn at varying
    // occupancy: every shape the engine's open/finish cycle can produce.
    while (auto p = ports.allocate()) live.push_back(*p);
    EXPECT_EQ(ports.allocated(), ports.capacity());
    while (!live.empty()) {
        ports.release(live.back());
        live.pop_back();
    }
    EXPECT_EQ(ports.allocated(), 0u);
    EXPECT_EQ(ports.free_list_size(), ports.capacity());

    for (int round = 0; round < 200; ++round) {
        const std::size_t target = 1 + (round * 7) % ports.capacity();
        while (ports.allocated() < target) {
            const auto p = ports.allocate();
            ASSERT_TRUE(p.has_value());
            live.push_back(*p);
        }
        const std::size_t keep = target / 2;
        while (live.size() > keep) {
            ports.release(live.back());
            live.pop_back();
        }
        // O(1) witness: same reservation as at construction, every round.
        ASSERT_EQ(ports.free_list_capacity(), reserved);
    }
    EXPECT_EQ(ports.allocated(), live.size());
}

TEST(PortAllocatorDeathTest, DoubleReleaseIsCaughtInConstantTime) {
    port_allocator ports(50, 59);
    const auto p = ports.allocate();
    ASSERT_TRUE(p.has_value());
    ports.release(*p);
    EXPECT_DEATH(ports.release(*p), "busy_");
}

TEST(PortDemux, TwoConnectionsShareOnePipe) {
    // Two independent unidirectional TCP connections (distinct port pairs)
    // multiplexed over a single forward pipe and a single reverse pipe,
    // demuxed at each end — the §3.1 architecture.
    virtual_clock clock;
    duplex_link link(clock, 50);
    port_demux data_demux;  // receiver side
    port_demux ack_demux;   // sender side
    link.forward().set_receiver(data_demux.receiver());
    link.reverse().set_receiver(ack_demux.receiver());

    tcp::connection_config cfg_a;
    cfg_a.local_port = 5001;
    cfg_a.remote_port = 5002;
    tcp::connection_config cfg_b;
    cfg_b.local_port = 6001;
    cfg_b.remote_port = 6002;

    tcp::tcp_sender<direct_memory> sender_a(direct_memory{}, clock,
                                            link.forward(), cfg_a);
    tcp::tcp_sender<direct_memory> sender_b(direct_memory{}, clock,
                                            link.forward(), cfg_b);
    tcp::tcp_receiver<direct_memory> receiver_a(direct_memory{}, clock,
                                                link.reverse(),
                                                tcp::mirrored(cfg_a));
    tcp::tcp_receiver<direct_memory> receiver_b(direct_memory{}, clock,
                                                link.reverse(),
                                                tcp::mirrored(cfg_b));

    ASSERT_TRUE(data_demux.bind(5002, [&](std::span<const std::byte> p) {
        receiver_a.on_packet(p);
    }));
    ASSERT_TRUE(data_demux.bind(6002, [&](std::span<const std::byte> p) {
        receiver_b.on_packet(p);
    }));
    ASSERT_TRUE(ack_demux.bind(5001, [&](std::span<const std::byte> p) {
        sender_a.on_ack_packet(p);
    }));
    ASSERT_TRUE(ack_demux.bind(6001, [&](std::span<const std::byte> p) {
        sender_b.on_ack_packet(p);
    }));

    std::vector<std::vector<std::byte>> got_a, got_b;
    std::vector<std::byte> pending_a, pending_b;
    const auto wire_processor = [](std::vector<std::byte>& pending) {
        return [&pending](std::span<std::byte> payload) {
            checksum::inet_accumulator acc;
            acc.add_bytes(direct_memory{}, payload, 2);
            pending.assign(payload.begin(), payload.end());
            return tcp::rx_process_result{acc.folded(), true};
        };
    };
    receiver_a.set_processor(wire_processor(pending_a));
    receiver_b.set_processor(wire_processor(pending_b));
    receiver_a.set_accept_handler(
        [&](std::size_t) { got_a.push_back(pending_a); });
    receiver_b.set_accept_handler(
        [&](std::size_t) { got_b.push_back(pending_b); });

    // Interleave sends on both connections.
    rng r(1);
    std::vector<std::vector<std::byte>> sent_a, sent_b;
    const auto fill_from = [](const std::vector<std::byte>& msg) {
        return [&msg](const ring_span& dst) {
            std::memcpy(dst.first.data(), msg.data(), dst.first.size());
            if (!dst.second.empty()) {
                std::memcpy(dst.second.data(), msg.data() + dst.first.size(),
                            dst.second.size());
            }
            return std::optional<std::uint16_t>();
        };
    };
    for (int i = 0; i < 10; ++i) {
        sent_a.emplace_back(100 + i);
        r.fill(sent_a.back());
        ASSERT_TRUE(sender_a.send_message(sent_a.back().size(),
                                          fill_from(sent_a.back())));
        sent_b.emplace_back(50 + i);
        r.fill(sent_b.back());
        ASSERT_TRUE(sender_b.send_message(sent_b.back().size(),
                                          fill_from(sent_b.back())));
        clock.advance(500);
    }
    while ((!sender_a.idle() || !sender_b.idle()) &&
           clock.now() < 10'000'000) {
        clock.advance(500);
    }

    ASSERT_EQ(got_a.size(), sent_a.size());
    ASSERT_EQ(got_b.size(), sent_b.size());
    for (std::size_t i = 0; i < sent_a.size(); ++i) {
        EXPECT_EQ(got_a[i], sent_a[i]);
        EXPECT_EQ(got_b[i], sent_b[i]);
    }
    EXPECT_EQ(data_demux.no_listener_drops(), 0u);
    EXPECT_EQ(ack_demux.no_listener_drops(), 0u);
}

}  // namespace
}  // namespace ilp::net
