// SPSC ring unit tests: the lock-free queue under the pipelined dataplane.
//
// Covers the single-threaded protocol (full/empty/wrap, capacity-1 edge),
// the power-of-two capacity contract (death test), and a threaded
// producer/consumer run — the latter is the TSan target that pins down the
// acquire/release pairing between try_push and try_pop.
#include "pipeline/spsc_ring.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

namespace ilp::pipeline {
namespace {

TEST(SpscRing, StartsEmptyFillsToCapacityDrainsInOrder) {
    spsc_ring<int> ring(4);
    EXPECT_EQ(ring.capacity(), 4u);
    EXPECT_TRUE(ring.empty());
    EXPECT_FALSE(ring.full());
    EXPECT_EQ(ring.size(), 0u);

    for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.try_push(i));
    EXPECT_TRUE(ring.full());
    EXPECT_EQ(ring.size(), 4u);
    EXPECT_FALSE(ring.try_push(99));  // full: rejected, not overwritten

    for (int i = 0; i < 4; ++i) {
        int out = -1;
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, i);  // FIFO
    }
    EXPECT_TRUE(ring.empty());
    int out = -1;
    EXPECT_FALSE(ring.try_pop(out));  // empty: rejected
}

// Push/pop far past capacity so head/tail wrap the index mask many times;
// FIFO order and the full/empty predicates must hold at every offset.
TEST(SpscRing, WrapsAroundTheMaskWithoutLosingOrder) {
    spsc_ring<std::uint64_t> ring(8);
    std::uint64_t next_in = 0, next_out = 0;
    for (int round = 0; round < 100; ++round) {
        // Interleave bursts of different sizes to land on every phase.
        const std::size_t burst = 1 + (round % 8);
        for (std::size_t i = 0; i < burst; ++i) {
            ASSERT_TRUE(ring.try_push(next_in));
            ++next_in;
        }
        for (std::size_t i = 0; i < burst; ++i) {
            std::uint64_t out = ~0ull;
            ASSERT_TRUE(ring.try_pop(out));
            EXPECT_EQ(out, next_out);
            ++next_out;
        }
    }
    EXPECT_TRUE(ring.empty());
    EXPECT_EQ(next_in, next_out);
}

// Capacity 1 is a legal power of two: the ring degenerates to a mailbox
// that is full after one push and empty after one pop.
TEST(SpscRing, CapacityOneIsAMailbox) {
    spsc_ring<int> ring(1);
    EXPECT_EQ(ring.capacity(), 1u);
    for (int i = 0; i < 16; ++i) {
        EXPECT_TRUE(ring.try_push(i));
        EXPECT_TRUE(ring.full());
        EXPECT_FALSE(ring.try_push(i + 1000));
        int out = -1;
        ASSERT_TRUE(ring.try_pop(out));
        EXPECT_EQ(out, i);
        EXPECT_TRUE(ring.empty());
    }
}

TEST(SpscRingDeathTest, RejectsNonPowerOfTwoCapacity) {
    EXPECT_DEATH(spsc_ring<int>(3), "capacity");
    EXPECT_DEATH(spsc_ring<int>(0), "capacity");
    EXPECT_DEATH(spsc_ring<int>(12), "capacity");
}

// One producer thread, one consumer thread, a ring much smaller than the
// item count (so both full and empty races are exercised).  Every item must
// arrive exactly once, in order.  This test is the TSan target for the
// ring's memory ordering.
TEST(SpscRing, ThreadedProducerConsumerPreservesFifo) {
    constexpr std::uint32_t kItems = 20'000;
    spsc_ring<std::uint32_t> ring(16);
    std::vector<std::uint32_t> received;
    received.reserve(kItems);

    std::thread producer([&ring] {
        for (std::uint32_t i = 0; i < kItems;) {
            if (ring.try_push(i)) {
                ++i;
            } else {
                std::this_thread::yield();  // full: let the consumer run
            }
        }
    });
    std::thread consumer([&ring, &received] {
        while (received.size() < kItems) {
            std::uint32_t out = 0;
            if (ring.try_pop(out)) {
                received.push_back(out);
            } else {
                std::this_thread::yield();  // empty: let the producer run
            }
        }
    });
    producer.join();
    consumer.join();

    ASSERT_EQ(received.size(), kItems);
    for (std::uint32_t i = 0; i < kItems; ++i) ASSERT_EQ(received[i], i);
    EXPECT_TRUE(ring.empty());
}

}  // namespace
}  // namespace ilp::pipeline
