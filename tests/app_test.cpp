// End-to-end tests of the file-transfer application: ILP vs layered data
// paths over the full user-level TCP stack, with byte-exact verification,
// simulated memory accounting and fault injection.
#include <gtest/gtest.h>

#include "app/harness.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"

namespace ilp::app {
namespace {

using crypto::safer_k64;
using crypto::safer_simplified;
using crypto::simple_cipher;

TEST(FileTransfer, IlpModeDeliversFileIntact) {
    transfer_config config;
    config.mode = path_mode::ilp;
    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.payload_bytes_delivered, config.file_bytes);
    // 15 KB at <=996 B payload per 1024 B packet: 16 reply messages.
    EXPECT_EQ(result.reply_messages, 16u);
}

TEST(FileTransfer, LayeredModeDeliversFileIntact) {
    transfer_config config;
    config.mode = path_mode::layered;
    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.payload_bytes_delivered, config.file_bytes);
}

class FileTransferPacketSizes : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(FileTransferPacketSizes, BothModesCompleteAndAgree) {
    // Property sweep over the paper's packet-size axis: both implementations
    // must deliver identical, correct data at every size.
    for (const path_mode mode : {path_mode::ilp, path_mode::layered}) {
        transfer_config config;
        config.mode = mode;
        config.packet_wire_bytes = GetParam();
        config.file_bytes = 6 * 1024;
        const transfer_result result =
            run_transfer_native<safer_simplified>(config);
        ASSERT_TRUE(result.completed)
            << "mode=" << static_cast<int>(mode) << " size=" << GetParam();
        EXPECT_TRUE(result.verified);
    }
}

INSTANTIATE_TEST_SUITE_P(PaperSizes, FileTransferPacketSizes,
                         ::testing::Values(256, 512, 768, 1024, 1280));

TEST(FileTransfer, AllCiphersWork) {
    transfer_config config;
    config.file_bytes = 4 * 1024;
    {
        const auto r = run_transfer_native<safer_simplified>(config);
        EXPECT_TRUE(r.completed && r.verified);
    }
    {
        const auto r = run_transfer_native<simple_cipher>(config);
        EXPECT_TRUE(r.completed && r.verified);
    }
    {
        const auto r = run_transfer_native<safer_k64>(config);
        EXPECT_TRUE(r.completed && r.verified);
    }
}

TEST(FileTransfer, MultipleCopies) {
    transfer_config config;
    config.copies = 3;
    config.file_bytes = 2048;
    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.payload_bytes_delivered, 3u * 2048);
}

TEST(FileTransfer, EmptyFile) {
    transfer_config config;
    config.file_bytes = 0;
    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_EQ(result.payload_bytes_delivered, 0u);
    EXPECT_EQ(result.reply_messages, 1u);  // one empty reply signals EOF
}

TEST(FileTransfer, OneBytePayloadPackets) {
    // Degenerate but legal: smallest wire budget that still carries data.
    transfer_config config;
    config.file_bytes = 64;
    config.packet_wire_bytes = 40;  // 28 header bytes + a few payload bytes
    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
}

TEST(FileTransfer, SurvivesLossyLink) {
    transfer_config config;
    config.forward_faults.drop_probability = 0.1;
    config.forward_faults.corrupt_probability = 0.05;
    config.forward_faults.seed = 3;
    config.file_bytes = 8 * 1024;
    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.reply_tcp_sender.retransmissions, 0u);
}

TEST(FileTransfer, CorruptionNeverReachesTheApplication) {
    transfer_config config;
    config.forward_faults.corrupt_probability = 0.25;
    config.forward_faults.seed = 17;
    config.file_bytes = 8 * 1024;
    for (const path_mode mode : {path_mode::ilp, path_mode::layered}) {
        config.mode = mode;
        const transfer_result result =
            run_transfer_native<safer_simplified>(config);
        ASSERT_TRUE(result.completed);
        EXPECT_TRUE(result.verified);
        EXPECT_GT(result.reply_tcp_receiver.checksum_failures, 0u);
    }
}

TEST(FileTransfer, IlpAndLayeredProduceIdenticalWireTraffic) {
    // The two implementations are alternative *implementations* of the same
    // protocol: the receiver must not be able to tell them apart, so a
    // cross-mode transfer (ILP sender, layered receiver and vice versa)
    // works too.  run_transfer uses one mode end-to-end, so compare both
    // directions via wire byte counts and message counts instead.
    transfer_config config;
    config.file_bytes = 4096;
    config.mode = path_mode::ilp;
    const auto ilp = run_transfer_native<safer_simplified>(config);
    config.mode = path_mode::layered;
    const auto layered = run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(ilp.completed && layered.completed);
    EXPECT_EQ(ilp.reply_pipe.bytes_sent, layered.reply_pipe.bytes_sent);
    EXPECT_EQ(ilp.reply_messages, layered.reply_messages);
    EXPECT_EQ(ilp.server_send.wire_bytes, layered.server_send.wire_bytes);
}

TEST(FileTransfer, IlpReducesSimulatedMemoryAccessesBothSides) {
    // The paper's Figure 13 effect at full-application scale: ILP performs
    // fewer memory accesses on the sending AND the receiving side.
    transfer_config config;
    config.file_bytes = 15 * 1024;

    memsim::memory_system ilp_client(memsim::supersparc_with_l2());
    memsim::memory_system ilp_server(memsim::supersparc_with_l2());
    config.mode = path_mode::ilp;
    const auto ilp =
        run_transfer_simulated<safer_simplified>(config, ilp_client,
                                                 ilp_server);

    memsim::memory_system lay_client(memsim::supersparc_with_l2());
    memsim::memory_system lay_server(memsim::supersparc_with_l2());
    config.mode = path_mode::layered;
    const auto layered =
        run_transfer_simulated<safer_simplified>(config, lay_client,
                                                 lay_server);

    ASSERT_TRUE(ilp.completed && ilp.verified);
    ASSERT_TRUE(layered.completed && layered.verified);

    const auto ilp_send = ilp_server.data_stats().total_accesses();
    const auto lay_send = lay_server.data_stats().total_accesses();
    const auto ilp_recv = ilp_client.data_stats().total_accesses();
    const auto lay_recv = lay_client.data_stats().total_accesses();
    EXPECT_LT(ilp_send, lay_send);
    EXPECT_LT(ilp_recv, lay_recv);
    // The reduction is substantial (paper: up to ~30 %), not a rounding
    // artifact.
    EXPECT_LT(static_cast<double>(ilp_send), 0.9 * static_cast<double>(lay_send));
    EXPECT_LT(static_cast<double>(ilp_recv), 0.9 * static_cast<double>(lay_recv));
}

TEST(FileTransfer, SimulatedAndNativeRunsAgreeOnProtocolBehaviour) {
    // The memory policy must not change observable behaviour: same message
    // counts, same delivered bytes.
    transfer_config config;
    config.file_bytes = 4096;
    const auto native = run_transfer_native<safer_simplified>(config);
    memsim::memory_system client_sys(memsim::test_tiny());
    memsim::memory_system server_sys(memsim::test_tiny());
    const auto simulated = run_transfer_simulated<safer_simplified>(
        config, client_sys, server_sys);
    ASSERT_TRUE(native.completed && simulated.completed);
    EXPECT_EQ(native.reply_messages, simulated.reply_messages);
    EXPECT_EQ(native.payload_bytes_delivered,
              simulated.payload_bytes_delivered);
    EXPECT_EQ(native.elapsed_us, simulated.elapsed_us);
}

TEST(FileTransfer, ZeroCopyAdapterDeliversAndCutsTraffic) {
    // fbufs-style adapter (paper refs [12]-[15]): the transfer still works,
    // and the counted memory traffic drops by the system copies on both
    // sides.
    transfer_config config;
    config.file_bytes = 8 * 1024;

    memsim::memory_system copy_client(memsim::supersparc_with_l2());
    memsim::memory_system copy_server(memsim::supersparc_with_l2());
    const auto copying = run_transfer_simulated<safer_simplified>(
        config, copy_client, copy_server);

    config.zero_copy = true;
    memsim::memory_system zc_client(memsim::supersparc_with_l2());
    memsim::memory_system zc_server(memsim::supersparc_with_l2());
    const auto zero_copy = run_transfer_simulated<safer_simplified>(
        config, zc_client, zc_server);

    ASSERT_TRUE(copying.completed && copying.verified);
    ASSERT_TRUE(zero_copy.completed && zero_copy.verified);
    EXPECT_EQ(copying.reply_messages, zero_copy.reply_messages);
    EXPECT_LT(zc_server.data_stats().total_accesses(),
              copy_server.data_stats().total_accesses());
    EXPECT_LT(zc_client.data_stats().total_accesses(),
              copy_client.data_stats().total_accesses());
}

TEST(FileTransfer, PassStructureMatchesPaperFigures) {
    // Fig. 3/5 pass inventory: the layered path must show the standalone
    // passes, the ILP path must fold them into the fused loop.
    transfer_config config;
    config.file_bytes = 2048;

    config.mode = path_mode::ilp;
    const auto ilp = run_transfer_native<safer_simplified>(config);
    EXPECT_GT(ilp.server_send.fused_loop_bytes, 0u);
    EXPECT_EQ(ilp.server_send.marshal_pass_bytes, 0u);
    EXPECT_EQ(ilp.server_send.cipher_pass_bytes, 0u);
    EXPECT_EQ(ilp.server_send.copy_pass_bytes, 0u);
    EXPECT_GT(ilp.client_receive.fused_loop_bytes, 0u);
    EXPECT_EQ(ilp.client_receive.cipher_pass_bytes, 0u);

    config.mode = path_mode::layered;
    const auto layered = run_transfer_native<safer_simplified>(config);
    EXPECT_EQ(layered.server_send.fused_loop_bytes, 0u);
    EXPECT_GT(layered.server_send.marshal_pass_bytes, 0u);
    EXPECT_GT(layered.server_send.cipher_pass_bytes, 0u);
    EXPECT_GT(layered.server_send.copy_pass_bytes, 0u);
    EXPECT_GT(layered.server_send.checksum_pass_bytes, 0u);
    EXPECT_GT(layered.client_receive.checksum_pass_bytes, 0u);
    EXPECT_GT(layered.client_receive.cipher_pass_bytes, 0u);
}

}  // namespace
}  // namespace ilp::app
