// Property tests for the ILP core: parameterized sweeps asserting the
// framework's invariants over many shapes of message, segmentation and
// stage composition.
//
//   P1  fused == layered, byte for byte and checksum for checksum, for
//       every cipher and a sweep of message sizes;
//   P2  part-order independence: any tiling of a message into 8-aligned
//       parts, processed in any order, produces the same wire image and
//       checksum (the general form of the paper's B,C,A claim);
//   P3  gather/scatter with arbitrary random segmentation round-trips and
//       equals the contiguous reference;
//   P4  slicing a gather source at every legal offset equals the full run.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <numeric>
#include <vector>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/layered_path.h"
#include "core/stage.h"
#include "crypto/safer_k64.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "util/rng.h"

namespace ilp::core {
namespace {

using memsim::direct_memory;

std::array<std::byte, 8> test_key(std::uint64_t seed) {
    std::array<std::byte, 8> key;
    rng r(seed);
    r.fill(key);
    return key;
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng r(seed);
    r.fill(v);
    return v;
}

// ---------------------------------------------------------------------------
// P1: fused == layered across ciphers and sizes

template <typename Cipher>
void expect_fused_equals_layered(std::size_t n, std::uint64_t seed) {
    const auto key = test_key(seed);
    const Cipher cipher{std::span<const std::byte>(key)};
    const auto payload = random_bytes(n, seed + 1);
    const direct_memory mem;

    byte_buffer layered(n);
    marshal_to_buffer(mem, span_source(payload), layered.span());
    encrypt_stage<Cipher> enc(cipher);
    apply_stage_in_place(mem, enc, layered.span());
    checksum::inet_accumulator layered_acc;
    checksum_pass(mem, layered_acc, layered.span(), 8);

    byte_buffer fused(n);
    checksum::inet_accumulator fused_acc;
    encrypt_stage<Cipher> enc2(cipher);
    checksum_tap8 tap(fused_acc);
    auto pipe = make_pipeline(enc2, tap);
    pipe.run(mem, span_source(payload), span_dest(fused.span()));

    ASSERT_EQ(std::memcmp(layered.data(), fused.data(), n), 0)
        << "n=" << n << " seed=" << seed;
    ASSERT_EQ(layered_acc.finish(), fused_acc.finish());
}

class FusedLayeredEquivalence : public ::testing::TestWithParam<std::size_t> {
};

TEST_P(FusedLayeredEquivalence, SaferSimplified) {
    expect_fused_equals_layered<crypto::safer_simplified>(GetParam(), 11);
}
TEST_P(FusedLayeredEquivalence, SaferFull) {
    expect_fused_equals_layered<crypto::safer_k64>(GetParam(), 22);
}
TEST_P(FusedLayeredEquivalence, SimpleCipher) {
    expect_fused_equals_layered<crypto::simple_cipher>(GetParam(), 33);
}

INSTANTIATE_TEST_SUITE_P(Sizes, FusedLayeredEquivalence,
                         ::testing::Values(8, 16, 64, 256, 1024, 1032, 4096,
                                           16384));

// ---------------------------------------------------------------------------
// P2: arbitrary 8-aligned tilings processed in arbitrary order

TEST(PartOrderIndependence, RandomTilingsMatchLinear) {
    const auto key = test_key(44);
    const crypto::safer_simplified cipher(key);
    const direct_memory mem;
    rng r(55);

    for (int trial = 0; trial < 50; ++trial) {
        const std::size_t n = 8 * (1 + r.next_below(64));  // 8..512 bytes
        const auto payload = random_bytes(n, 1000 + trial);

        byte_buffer linear(n);
        checksum::inet_accumulator linear_acc;
        {
            encrypt_stage<crypto::safer_simplified> enc(cipher);
            checksum_tap8 tap(linear_acc);
            auto pipe = make_pipeline(enc, tap);
            pipe.run(mem, span_source(payload), span_dest(linear.span()));
        }

        // Random tiling into 8-aligned parts.
        std::vector<std::pair<std::size_t, std::size_t>> parts;
        std::size_t offset = 0;
        while (offset < n) {
            const std::size_t len =
                std::min<std::size_t>(8 * (1 + r.next_below(8)), n - offset);
            parts.emplace_back(offset, len);
            offset += len;
        }
        // Shuffle the processing order.
        for (std::size_t i = parts.size(); i > 1; --i) {
            std::swap(parts[i - 1], parts[r.next_below(i)]);
        }

        byte_buffer tiled(n);
        checksum::inet_accumulator tiled_acc;
        {
            encrypt_stage<crypto::safer_simplified> enc(cipher);
            checksum_tap8 tap(tiled_acc);
            auto pipe = make_pipeline(enc, tap);
            const gather_source whole = span_source(payload);
            const scatter_dest dest = span_dest(tiled.span());
            for (const auto& [part_offset, part_len] : parts) {
                pipe.run(mem, whole.slice(part_offset, part_len),
                         dest.slice(part_offset, part_len));
            }
        }
        ASSERT_EQ(std::memcmp(linear.data(), tiled.data(), n), 0)
            << "trial " << trial;
        ASSERT_EQ(linear_acc.finish(), tiled_acc.finish()) << "trial " << trial;
    }
}

// ---------------------------------------------------------------------------
// P3: random gather/scatter segmentation round-trips

TEST(GatherScatterProperty, RandomSegmentationRoundTrips) {
    const direct_memory mem;
    rng r(66);

    for (int trial = 0; trial < 50; ++trial) {
        // Application data: a mix of word fields and opaque chunks.
        const std::size_t word_fields = 1 + r.next_below(4);
        std::vector<std::uint32_t> ints_in(word_fields);
        for (auto& v : ints_in) v = r.next_u32();
        const std::size_t opaque_len = 8 * (1 + r.next_below(32));
        const auto opaque_in = random_bytes(opaque_len, 2000 + trial);
        const std::size_t pad = 8 * r.next_below(3);

        gather_source src;
        src.add({reinterpret_cast<const std::byte*>(ints_in.data()),
                 word_fields * 4},
                segment_op::xdr_words);
        src.add(opaque_in);
        if (pad > 0) src.add_zeros(pad);
        const std::size_t total = src.total_size();

        // Reference wire image via the cursor.
        byte_buffer wire(total);
        gather_cursor cur(src);
        cur.fill(mem, wire.data(), total);

        // Scatter back into fresh application memory.
        std::vector<std::uint32_t> ints_out(word_fields);
        byte_buffer opaque_out(opaque_len);
        scatter_dest dst;
        dst.add({reinterpret_cast<std::byte*>(ints_out.data()),
                 word_fields * 4},
                segment_op::xdr_words);
        dst.add(opaque_out.span());
        if (pad > 0) dst.add_discard(pad);

        // Drain in random chunk sizes.
        scatter_cursor out(dst);
        std::size_t pos = 0;
        while (pos < total) {
            const std::size_t chunk =
                std::min<std::size_t>(4 * (1 + r.next_below(8)), total - pos);
            out.drain(mem, wire.data() + pos, chunk);
            pos += chunk;
        }

        ASSERT_EQ(ints_in, ints_out) << "trial " << trial;
        ASSERT_EQ(std::memcmp(opaque_in.data(), opaque_out.data(), opaque_len),
                  0)
            << "trial " << trial;
    }
}

// ---------------------------------------------------------------------------
// P4: every legal slice pair reproduces the full run

TEST(SliceProperty, EverySplitPointMatchesFullRun) {
    const direct_memory mem;
    const auto a = random_bytes(24, 70);
    const auto b = random_bytes(40, 71);

    gather_source src;
    src.add(a, segment_op::xdr_words);
    src.add(b);
    src.add_zeros(16);
    const std::size_t total = src.total_size();

    byte_buffer full(total);
    gather_cursor cur(src);
    cur.fill(mem, full.data(), total);

    for (std::size_t split = 4; split < total; split += 4) {
        byte_buffer parts(total);
        const gather_source head = src.slice(0, split);
        const gather_source tail = src.slice(split, total - split);
        gather_cursor hc(head), tc(tail);
        hc.fill(mem, parts.data(), split);
        tc.fill(mem, parts.data() + split, total - split);
        ASSERT_EQ(std::memcmp(full.data(), parts.data(), total), 0)
            << "split at " << split;
    }
}

// ---------------------------------------------------------------------------
// Checksum taps at different unit sizes agree

TEST(ChecksumTapProperty, Tap2AndTap8Agree) {
    const direct_memory mem;
    for (const std::size_t n : {8u, 64u, 1024u}) {
        const auto payload = random_bytes(n, 80 + n);
        byte_buffer out2(n), out8(n);

        checksum::inet_accumulator acc2, acc8;
        checksum_tap2 tap2(acc2);
        checksum_tap8 tap8(acc8);
        auto pipe2 = make_pipeline(tap2);
        auto pipe8 = make_pipeline(tap8);
        pipe2.run(mem, span_source(payload), span_dest(out2.span()));
        pipe8.run(mem, span_source(payload), span_dest(out8.span()));
        EXPECT_EQ(acc2.finish(), acc8.finish()) << "n=" << n;
        EXPECT_EQ(std::memcmp(out2.data(), out8.data(), n), 0);
    }
}

}  // namespace
}  // namespace ilp::core
