// Tests for the fusion-legality analyzer: the footprint IR, the paper's
// applicability rules, the pipeline registry, and the runtime word-touch
// auditor (positive on the real fused paths, negative on a seeded
// double-reading stage).
#include <gtest/gtest.h>

#include <array>
#include <cstring>

#include "analysis/check.h"
#include "analysis/diagnostics.h"
#include "analysis/registry.h"
#include "analysis/touch_audit.h"
#include "app/path_models.h"
#include "app/touch_audits.h"
#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "crypto/safer_k64.h"
#include "memsim/configs.h"
#include "memsim/mem_policy.h"
#include "memsim/touch_map.h"
#include "rpc/pipeline_models.h"
#include "tcp/pipeline_models.h"
#include "util/rng.h"
#include "xdr/xdr.h"

namespace ilp {
namespace {

using analysis::finding;
using analysis::footprint;
using analysis::pipeline_kind;
using analysis::pipeline_model;
using analysis::severity;

bool has_rule(const std::vector<finding>& findings, const char* rule,
              severity sev = severity::error) {
    for (const finding& f : findings) {
        if (f.sev == sev && std::strcmp(f.rule, rule) == 0) return true;
    }
    return false;
}

std::size_t error_count(const std::vector<finding>& findings) {
    std::size_t n = 0;
    for (const finding& f : findings) {
        if (f.sev == severity::error) ++n;
    }
    return n;
}

pipeline_model fused(const char* name, std::vector<footprint> stages,
                     std::size_t le) {
    pipeline_model m;
    m.name = name;
    m.site = "tests/analysis_test.cpp";
    m.kind = pipeline_kind::fused;
    m.stages = std::move(stages);
    m.exchange_unit_bytes = le;
    return m;
}

crypto::safer_k64 test_cipher() {
    std::array<std::byte, crypto::safer_k64::key_bytes> key{};
    rng(5).fill(key);
    return crypto::safer_k64(key);
}

// ---------------------------------------------------------------------------
// Footprint IR

TEST(Footprint, DeclaredStagesReportTheirRealGeometry) {
    constexpr footprint enc =
        analysis::footprint_of<core::encrypt_stage<crypto::safer_k64>>();
    EXPECT_STREQ(enc.name, "encrypt");
    EXPECT_EQ(enc.unit_bytes, crypto::safer_k64::block_bytes);
    EXPECT_EQ(enc.aux_table_bytes, crypto::safer_k64::table_bytes);
    EXPECT_FALSE(enc.ordering_constrained);

    constexpr footprint crc = analysis::footprint_of<core::crc32_tap>();
    EXPECT_TRUE(crc.ordering_constrained);
    EXPECT_EQ(crc.writes_per_unit, 0u);  // taps do not write the stream
}

// Local classes cannot carry static members, so the undeclared-stage probe
// lives at namespace scope.
struct bare_stage {
    static constexpr std::size_t unit_bytes = 4;
    static constexpr bool ordering_constrained = true;
};

TEST(Footprint, UndeclaredStageGetsConservativeDefaults) {
    constexpr footprint fp = analysis::footprint_of<bare_stage>();
    EXPECT_STREQ(fp.name, "undeclared");
    EXPECT_EQ(fp.unit_bytes, 4u);
    EXPECT_TRUE(fp.ordering_constrained);
    EXPECT_EQ(fp.reads_per_unit, 4u);
    EXPECT_EQ(fp.writes_per_unit, 4u);
}

TEST(Footprint, XdrVariableLengthCodecsAreMarkedMidLoop) {
    EXPECT_TRUE(xdr::int_codec.length_known_before_loop);
    EXPECT_FALSE(xdr::opaque_varlen_codec.length_known_before_loop);
    EXPECT_FALSE(xdr::string_codec.length_known_before_loop);
}

// ---------------------------------------------------------------------------
// Rule R1: ordering-constrained stages vs out-of-order parts

TEST(Checker, RejectsOrderingConstrainedStageUnderOutOfOrderParts) {
    using bad = core::fused_pipeline<
        core::encrypt_stage<crypto::safer_k64>, core::crc32_tap>;
    pipeline_model m = fused("crc-under-bca", bad::footprints(),
                             bad::unit_bytes);
    m.out_of_order_parts = true;

    const std::vector<finding> findings = analysis::check_pipeline(m);
    EXPECT_TRUE(has_rule(findings, "R1-ordering"));
    EXPECT_FALSE(analysis::passes(findings));

    // The diagnostic must be actionable: name the stage and the fix.
    bool found = false;
    for (const finding& f : findings) {
        if (std::strcmp(f.rule, "R1-ordering") != 0) continue;
        found = true;
        EXPECT_NE(f.message.find("crc32_tap"), std::string::npos);
        EXPECT_NE(f.message.find("trailer"), std::string::npos);
    }
    EXPECT_TRUE(found);
}

TEST(Checker, SameStagesAreLegalUnderLinearOrder) {
    using same = core::fused_pipeline<
        core::encrypt_stage<crypto::safer_k64>, core::crc32_tap>;
    pipeline_model m = fused("crc-linear", same::footprints(),
                             same::unit_bytes);
    m.out_of_order_parts = false;  // trailer framing: strictly front-to-back
    EXPECT_TRUE(analysis::passes(analysis::check_pipeline(m)));
}

// ---------------------------------------------------------------------------
// Rule R2: header sizes must be known before the loop

TEST(Checker, RejectsMidLoopLengthDiscovery) {
    footprint varlen{.name = "xdr_string_decode",
                     .unit_bytes = 4,
                     .reads_per_unit = 4,
                     .writes_per_unit = 4,
                     .ordering_constrained = false,
                     .length_known_before_loop = false,
                     .alignment = 4,
                     .aux_table_bytes = 0};
    pipeline_model m = fused("varlen-fusion", {varlen}, 4);
    const std::vector<finding> findings = analysis::check_pipeline(m);
    EXPECT_TRUE(has_rule(findings, "R2-header-size"));
    bool names_stage = false;
    for (const finding& f : findings) {
        if (f.message.find("xdr_string_decode") != std::string::npos) {
            names_stage = true;
        }
    }
    EXPECT_TRUE(names_stage);
}

TEST(Checker, RejectsPlanEnteredBeforeHeaderSizesFixed) {
    using loop = core::fused_pipeline<core::checksum_tap8>;
    pipeline_model m = fused("premature", loop::footprints(),
                             loop::unit_bytes);
    m.header_sizes_known = false;
    EXPECT_TRUE(has_rule(analysis::check_pipeline(m), "R2-header-size"));
}

// ---------------------------------------------------------------------------
// Rule R3: part geometry vs stage granularity

TEST(Checker, RejectsPartCutThatStraddlesACipherBlock) {
    using loop = core::fused_pipeline<
        core::encrypt_stage<crypto::safer_k64>, core::checksum_tap8>;
    pipeline_model m =
        fused("straddle", loop::footprints(), loop::unit_bytes);
    // Part cut at offset 4: inside the first 8-byte cipher block.
    m.parts = {{4, 32}, {36, 8}, {0, 4}};
    const std::vector<finding> findings = analysis::check_pipeline(m);
    EXPECT_TRUE(has_rule(findings, "R3-granularity"));
    bool names_alignment = false;
    for (const finding& f : findings) {
        if (std::strcmp(f.rule, "R3-granularity") == 0 &&
            f.message.find("straddle") != std::string::npos) {
            names_alignment = true;
        }
    }
    EXPECT_TRUE(names_alignment);
}

TEST(Checker, RejectsTornUnitPartLength) {
    using loop = core::fused_pipeline<core::checksum_tap8>;
    pipeline_model m = fused("torn", loop::footprints(), loop::unit_bytes);
    m.parts = {{0, 12}};  // 12 % 8 != 0: the loop would process a torn unit
    EXPECT_TRUE(has_rule(analysis::check_pipeline(m), "R3-granularity"));
}

TEST(Checker, AcceptsThePaperPartSchedule) {
    const core::message_plan plan = core::plan_parts(1052);
    ASSERT_TRUE(plan.well_formed());
    using loop = core::fused_pipeline<
        core::encrypt_stage<crypto::safer_k64>, core::checksum_tap8>;
    pipeline_model m = fused("bca", loop::footprints(), loop::unit_bytes);
    m.out_of_order_parts = true;
    for (const core::message_part& p : plan.ilp_order()) {
        if (!p.empty()) m.parts.push_back({p.offset, p.len});
    }
    EXPECT_TRUE(analysis::passes(analysis::check_pipeline(m)));
}

// ---------------------------------------------------------------------------
// Rule R4 and cost warnings

TEST(Checker, RejectsIncoherentFootprint) {
    footprint bogus{.name = "bogus",
                    .unit_bytes = 8,
                    .reads_per_unit = 16,  // touches more than its unit holds
                    .writes_per_unit = 8,
                    .ordering_constrained = false,
                    .length_known_before_loop = true,
                    .alignment = 3,  // does not divide 8 either
                    .aux_table_bytes = 0};
    const std::vector<finding> findings =
        analysis::check_pipeline(fused("bogus", {bogus}, 8));
    EXPECT_TRUE(has_rule(findings, "R4-footprint"));
    EXPECT_GE(error_count(findings), 2u);
}

TEST(Checker, WarnsOnCachePressureFromLargeTables) {
    footprint fat{.name = "fat_cipher",
                  .unit_bytes = 8,
                  .reads_per_unit = 8,
                  .writes_per_unit = 8,
                  .ordering_constrained = false,
                  .length_known_before_loop = true,
                  .alignment = 8,
                  .aux_table_bytes = 8192};
    const std::vector<finding> findings =
        analysis::check_pipeline(fused("fat", {fat}, 8));
    EXPECT_TRUE(has_rule(findings, "W2-cache-pressure", severity::warning));
    EXPECT_TRUE(analysis::passes(findings));  // warnings never fail the lint
}

TEST(Checker, WarnsOnWordChainHandoffMismatch) {
    footprint block{.name = "block8",
                    .unit_bytes = 8,
                    .reads_per_unit = 8,
                    .writes_per_unit = 8,
                    .ordering_constrained = false,
                    .length_known_before_loop = true,
                    .alignment = 8,
                    .aux_table_bytes = 0};
    pipeline_model m = fused("chain", {block}, 4);
    m.kind = pipeline_kind::word_chain;
    EXPECT_TRUE(
        has_rule(analysis::check_pipeline(m), "W1-word-handoff",
                 severity::warning));
}

// ---------------------------------------------------------------------------
// Registry + the stack's own pipelines

TEST(Registry, EveryRegisteredStackPipelineIsLegal) {
    analysis::pipeline_registry registry;
    std::vector<finding> at_registration;
    const auto take = [&at_registration](std::vector<finding> f) {
        at_registration.insert(at_registration.end(), f.begin(), f.end());
    };
    take(tcp::register_tcp_pipelines(registry));
    take(rpc::register_rpc_pipelines(registry));
    take(app::register_app_pipelines(registry));

    EXPECT_GE(registry.models().size(), 10u);
    EXPECT_EQ(error_count(at_registration), 0u);
    EXPECT_EQ(error_count(registry.check_all()), 0u);
}

TEST(Registry, JsonReportIsWellFormedAndCountsMatch) {
    analysis::pipeline_registry registry;
    (void)rpc::register_rpc_pipelines(registry);
    const std::vector<finding> findings = registry.check_all();
    const std::string doc =
        analysis::render_json(registry.models(), findings);
    EXPECT_NE(doc.find("\"pipelines\""), std::string::npos);
    EXPECT_NE(doc.find("\"findings\""), std::string::npos);
    EXPECT_NE(doc.find("\"errors\": 0"), std::string::npos);
    EXPECT_NE(doc.find("rpc-trailer-send"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Word-touch auditor

TEST(TouchAudit, FusedSendPathTouchesEveryPayloadWordExactlyOnce) {
    const crypto::safer_k64 cipher = test_cipher();
    const app::audit_outcome out = app::audit_fused_send(cipher, 1024);
    EXPECT_TRUE(out.round_trip_ok);
    for (const finding& f : out.findings) {
        ADD_FAILURE() << analysis::render_text(f);
    }
}

TEST(TouchAudit, FusedReceivePathTouchesEveryPayloadWordExactlyOnce) {
    const crypto::safer_k64 cipher = test_cipher();
    const app::audit_outcome out = app::audit_fused_receive(cipher, 1024);
    EXPECT_TRUE(out.round_trip_ok);
    for (const finding& f : out.findings) {
        ADD_FAILURE() << analysis::render_text(f);
    }
}

TEST(TouchAudit, OddPayloadSizesStillAuditClean) {
    const crypto::safer_k64 cipher = test_cipher();
    for (const std::size_t payload : {0u, 4u, 52u, 1000u}) {
        const app::audit_outcome s = app::audit_fused_send(cipher, payload);
        EXPECT_TRUE(s.round_trip_ok) << payload;
        EXPECT_EQ(s.findings.size(), 0u) << payload;
        const app::audit_outcome r = app::audit_fused_receive(cipher, payload);
        EXPECT_TRUE(r.round_trip_ok) << payload;
        EXPECT_EQ(r.findings.size(), 0u) << payload;
    }
}

// A deliberately broken stage: processes its unit normally but re-reads the
// source bytes through the memory policy a second time — the redundant
// access the fused loop exists to eliminate.  The auditor must catch it.
TEST(TouchAudit, CatchesADoubleReadingStage) {
    constexpr std::size_t n = 64;
    byte_buffer src(n), dst(n);
    rng(17).fill(src.span());

    memsim::memory_system sys(memsim::test_tiny());
    memsim::touch_map map;
    map.watch("src", src.data(), n);
    map.watch("dst", dst.data(), n);
    sys.set_touch_map(&map);
    const memsim::sim_memory mem(sys);

    // The fused copy itself reads src once and writes dst once...
    core::opaque_stage move_only;
    auto loop = core::make_pipeline(move_only);
    loop.run(mem, core::span_source(src.span()),
             core::span_dest(dst.span()));
    // ...then the "double-reading stage" goes back over the source.
    for (std::size_t i = 0; i < n; i += 4) {
        (void)mem.load_u32(src.data() + i);
    }
    sys.set_touch_map(nullptr);

    const std::vector<finding> findings = analysis::audit_touches(
        map, {{"src", 1, 0}, {"dst", 0, 1}}, "tests/analysis_test.cpp",
        "double-read-demo");
    ASSERT_FALSE(findings.empty());
    EXPECT_TRUE(has_rule(findings, "A1-redundant-touch"));
    // One collapsed finding for the whole re-read run, not 64 of them.
    EXPECT_LE(findings.size(), 2u);
    EXPECT_NE(findings[0].message.find("src"), std::string::npos);
}

TEST(TouchAudit, CatchesAMissedRange) {
    constexpr std::size_t n = 32;
    byte_buffer src(n);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::touch_map map;
    map.watch("src", src.data(), n);
    sys.set_touch_map(&map);
    const memsim::sim_memory mem(sys);
    // Touch only the first half; the second half goes unprocessed.
    for (std::size_t i = 0; i < n / 2; i += 4) {
        (void)mem.load_u32(src.data() + i);
    }
    sys.set_touch_map(nullptr);

    const std::vector<finding> findings = analysis::audit_touches(
        map, {{"src", 1, 0}}, "tests/analysis_test.cpp", "missed-demo");
    EXPECT_TRUE(has_rule(findings, "A2-missed-touch"));
}

}  // namespace
}  // namespace ilp
