// Tests for the trace capture/replay facility: recorded streams match the
// live simulation, rebasing makes them layout-independent, and one trace
// replays consistently across cache configurations.
#include <gtest/gtest.h>

#include <cstring>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "memsim/trace.h"
#include "util/rng.h"

namespace ilp::memsim {
namespace {

std::array<std::byte, 8> key() {
    std::array<std::byte, 8> k;
    rng r(1);
    r.fill(k);
    return k;
}

// Runs the standard fused encrypt+checksum loop with the given policy.
template <typename Mem>
std::uint16_t run_loop(const Mem& mem, std::span<const std::byte> src,
                       std::span<std::byte> dst,
                       const crypto::safer_simplified& cipher) {
    checksum::inet_accumulator acc;
    core::encrypt_stage<crypto::safer_simplified> enc(cipher);
    core::checksum_tap8 tap(acc);
    auto pipe = core::make_pipeline(enc, tap);
    pipe.run(mem, core::span_source(src), core::span_dest(dst));
    return acc.finish();
}

TEST(Trace, CapturePerformsAndRecords) {
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    byte_buffer src(256), traced_dst(256), direct_dst(256);
    rng r(2);
    r.fill(src.span());

    access_trace trace;
    const std::uint16_t traced_sum =
        run_loop(trace_memory(trace), src.span(), traced_dst.span(), cipher);
    const std::uint16_t direct_sum =
        run_loop(direct_memory{}, src.span(), direct_dst.span(), cipher);

    // Tracing must not change behaviour.
    EXPECT_EQ(traced_sum, direct_sum);
    EXPECT_EQ(std::memcmp(traced_dst.data(), direct_dst.data(), 256), 0);
    // 256 B at Le=8: 32 reads + 32 writes of packet data + 512 table/key
    // byte reads.
    EXPECT_EQ(trace.read_count(), 32u + 512);
    EXPECT_EQ(trace.write_count(), 32u);
}

TEST(Trace, ReplayMatchesLiveSimulation) {
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    byte_buffer src(512), dst_a(512), dst_b(512);
    rng r(3);
    r.fill(src.span());

    // Live simulation.
    memory_system live(supersparc_with_l2());
    run_loop(sim_memory(live), src.span(), dst_a.span(), cipher);

    // Capture then replay into an identical configuration.
    access_trace trace;
    run_loop(trace_memory(trace), src.span(), dst_b.span(), cipher);
    memory_system replayed(supersparc_with_l2());
    replay(trace, replayed);

    EXPECT_EQ(live.data_stats().total_accesses(),
              replayed.data_stats().total_accesses());
    EXPECT_EQ(live.data_stats().total_misses(),
              replayed.data_stats().total_misses());
    EXPECT_EQ(live.cycles(), replayed.cycles());
}

TEST(Trace, RebaseMakesRunsComparable) {
    // The same logical run captured over two different buffers replays
    // identically after rebasing (one contiguous arena per run).
    const auto k = key();
    const crypto::safer_simplified cipher(k);

    const auto capture = [&](access_trace& trace) {
        // src and dst carved from one arena so relative layout is fixed.
        byte_buffer arena(1024);
        rng r(4);
        r.fill(arena.span());
        checksum::inet_accumulator acc;
        core::encrypt_stage<crypto::safer_simplified> enc(cipher);
        core::checksum_tap8 tap(acc);
        auto pipe = core::make_pipeline(enc, tap);
        trace_memory mem(trace);
        core::gather_source src;
        src.add(arena.subspan(0, 512));
        pipe.run(mem, src, core::span_dest(arena.subspan(512, 512)));
    };

    access_trace first, second;
    capture(first);
    capture(second);
    // Cipher tables live at fixed static addresses; packet buffers move.
    first.rebase();
    second.rebase();

    memory_system sys1(supersparc_no_l2());
    memory_system sys2(supersparc_no_l2());
    replay(first, sys1);
    replay(second, sys2);
    EXPECT_EQ(sys1.data_stats().total_misses(),
              sys2.data_stats().total_misses());
    EXPECT_EQ(sys1.cycles(), sys2.cycles());
}

TEST(Trace, OneTraceManyCacheConfigurations) {
    // The shade workflow: one capture, three machines.
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    byte_buffer src(64 * 1024), dst(64 * 1024);  // streams far past the 16 KB L1
    rng r(5);
    r.fill(src.span());
    access_trace trace;
    run_loop(trace_memory(trace), src.span(), dst.span(), cipher);

    memory_system sparc_no_l2(supersparc_no_l2());
    memory_system sparc_l2(supersparc_with_l2());
    memory_system alpha(alpha21064(512 * 1024));
    // Replay twice: the 64 KB source streams through the 16 KB L1, so the
    // second pass misses L1 again — and hits the 1 MB SuperCache where one
    // exists.  That re-traversal is where a second-level cache earns its
    // keep.
    for (int pass = 0; pass < 2; ++pass) {
        replay(trace, sparc_no_l2);
        replay(trace, sparc_l2);
        replay(trace, alpha);
    }

    // Same accesses everywhere...
    EXPECT_EQ(sparc_no_l2.data_stats().total_accesses(), 2 * trace.size());
    EXPECT_EQ(sparc_l2.data_stats().total_accesses(), 2 * trace.size());
    EXPECT_EQ(alpha.data_stats().total_accesses(), 2 * trace.size());
    // ...same L1 misses on the two SuperSPARCs (identical L1 geometry)...
    EXPECT_EQ(sparc_no_l2.data_stats().total_misses(),
              sparc_l2.data_stats().total_misses());
    // ...but the no-L2 machine pays more per miss, and the Alpha's smaller
    // direct-mapped L1 misses at least as much.
    EXPECT_GT(sparc_no_l2.cycles(), sparc_l2.cycles());
    EXPECT_GE(alpha.data_stats().total_misses(),
              sparc_l2.data_stats().total_misses());
}

TEST(Trace, StatsHelpers) {
    access_trace trace;
    trace.append(0x100, 8, access_kind::read);
    trace.append(0x108, 4, access_kind::write);
    trace.append(0x10c, 1, access_kind::read);
    EXPECT_EQ(trace.size(), 3u);
    EXPECT_EQ(trace.read_count(), 2u);
    EXPECT_EQ(trace.write_count(), 1u);
    EXPECT_EQ(trace.total_bytes(), 13u);
    trace.clear();
    EXPECT_TRUE(trace.empty());
}

}  // namespace
}  // namespace ilp::memsim
