// Tests for the concurrent multi-flow engine: flow-table lifecycle and port
// recycling, DRR fairness bounds, backpressure under a pathological flow,
// chaos runs with bursty-lossy flows, and the determinism contract (same
// seed -> same fleet digest, invariant under shard count and under running
// shards on real threads).
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

#include "crypto/aead.h"
#include "crypto/safer_simplified.h"
#include "engine/fleet.h"
#include "engine/shard.h"
#include "memsim/mem_policy.h"
#include "util/rng.h"

namespace ilp::engine {
namespace {

using memsim::direct_memory;
using cipher = crypto::safer_simplified;
using test_shard = shard<direct_memory, cipher>;

cipher make_cipher(std::uint64_t seed) {
    std::array<std::byte, 8> key;
    rng key_rng(seed);
    key_rng.fill(key);
    return cipher{std::span<const std::byte>(key)};
}

flow_config small_flow(std::size_t file_bytes = 4 * 1024) {
    flow_config fc;
    fc.file_bytes = file_bytes;
    fc.packet_wire_bytes = 1024;
    return fc;
}

// --- flow table lifecycle --------------------------------------------------

TEST(EngineShard, SingleFlowCompletesAndRecyclesPorts) {
    shard_options opts;
    test_shard s(0, opts, direct_memory{}, direct_memory{});
    const cipher c = make_cipher(1);
    ASSERT_TRUE(s.open_flow(0, small_flow(), c, c));
    EXPECT_EQ(s.ports().allocated(), 4u);  // 4 pipe directions per flow
    EXPECT_EQ(s.active_flows(), 1u);
    s.run();
    const flow_outcome& o = s.outcome(0);
    EXPECT_TRUE(o.completed);
    EXPECT_TRUE(o.verified);
    EXPECT_GT(o.payload_bytes, 0u);
    // Teardown returned the flow's ports to the allocator.
    EXPECT_EQ(s.ports().allocated(), 0u);
    EXPECT_EQ(s.active_flows(), 0u);
}

TEST(EngineShard, PortExhaustionIsAnExplicitOutcome) {
    shard_options opts;
    opts.first_port = 100;
    opts.last_port = 107;  // room for exactly two flows (4 ports each)
    test_shard s(0, opts, direct_memory{}, direct_memory{});
    const cipher c = make_cipher(1);
    ASSERT_TRUE(s.open_flow(0, small_flow(), c, c));
    ASSERT_TRUE(s.open_flow(1, small_flow(), c, c));
    EXPECT_FALSE(s.open_flow(2, small_flow(), c, c));
    EXPECT_TRUE(s.outcome(2).ports_exhausted);
    EXPECT_EQ(s.active_flows(), 2u);  // the failed open holds no resources

    s.run();
    EXPECT_TRUE(s.outcome(0).completed && s.outcome(0).verified);
    EXPECT_TRUE(s.outcome(1).completed && s.outcome(1).verified);
    // With both flows torn down, a new flow can reuse the recycled ports.
    ASSERT_TRUE(s.open_flow(3, small_flow(), c, c));
    s.run();
    EXPECT_TRUE(s.outcome(3).completed && s.outcome(3).verified);
}

TEST(EngineShard, CloseFlowRecordsPartialOutcomeAndFreesResources) {
    shard_options opts;
    test_shard s(0, opts, direct_memory{}, direct_memory{});
    const cipher c = make_cipher(1);
    ASSERT_TRUE(s.open_flow(0, small_flow(64 * 1024), c, c));
    s.tick();  // a little progress, nowhere near completion
    s.close_flow(0);
    const flow_outcome& o = s.outcome(0);
    EXPECT_FALSE(o.completed);
    EXPECT_EQ(s.active_flows(), 0u);
    EXPECT_EQ(s.ports().allocated(), 0u);
    // The shard stays usable after an early close.
    ASSERT_TRUE(s.open_flow(1, small_flow(), c, c));
    s.run();
    EXPECT_TRUE(s.outcome(1).completed);
}

// --- DRR fairness ----------------------------------------------------------

// Two backlogged flows with very different segment sizes must be granted
// wire bytes at the same rate under deficit round-robin: over the whole
// contention period the cumulative grant difference stays bounded by one
// quantum plus one maximum segment (+ slack for TCP window stalls), instead
// of growing with the segment-size ratio.
TEST(EngineScheduler, DrrBoundsByteShareAcrossSegmentSizes) {
    shard_options opts;
    opts.policy = sched_policy::deficit_round_robin;
    opts.drr_quantum_bytes = 2048;
    test_shard s(0, opts, direct_memory{}, direct_memory{});
    const cipher c = make_cipher(1);
    flow_config small = small_flow(48 * 1024);
    small.packet_wire_bytes = 512;
    flow_config large = small_flow(48 * 1024);
    large.packet_wire_bytes = 1408;
    ASSERT_TRUE(s.open_flow(0, small, c, c));
    ASSERT_TRUE(s.open_flow(1, large, c, c));

    const std::uint64_t bound = opts.drr_quantum_bytes + 1408 + 2048;
    std::uint64_t max_diff = 0;
    while (s.active_flows() == 2) {
        s.tick();
        const std::uint64_t a = s.serviced_bytes(0);
        const std::uint64_t b = s.serviced_bytes(1);
        max_diff = std::max(max_diff, a > b ? a - b : b - a);
    }
    EXPECT_LE(max_diff, bound);
    s.run();
    EXPECT_TRUE(s.outcome(0).completed && s.outcome(0).verified);
    EXPECT_TRUE(s.outcome(1).completed && s.outcome(1).verified);
}

// Under plain round-robin the same pair diverges (each visit drains the TCP
// window, so per-visit grants track segment availability, not byte parity).
// This pins down that the DRR bound above is the policy's doing.
TEST(EngineScheduler, RoundRobinDoesNotMeterBytes) {
    shard_options opts;
    opts.policy = sched_policy::round_robin;
    test_shard s(0, opts, direct_memory{}, direct_memory{});
    const cipher c = make_cipher(1);
    flow_config small = small_flow(48 * 1024);
    small.packet_wire_bytes = 512;
    flow_config large = small_flow(48 * 1024);
    large.packet_wire_bytes = 1408;
    ASSERT_TRUE(s.open_flow(0, small, c, c));
    ASSERT_TRUE(s.open_flow(1, large, c, c));
    s.run();
    EXPECT_TRUE(s.outcome(0).completed && s.outcome(1).completed);
    // RR grants whole window bursts: the flows' serviced totals differ by
    // far more than the DRR bound at some point — weaker per-flow wire
    // efficiency for the small-segment flow means more wire bytes total.
    EXPECT_GT(s.serviced_bytes(0), s.serviced_bytes(1));
}

// --- backpressure ----------------------------------------------------------

// One pathological flow floods the shared kernel queue with tiny segments;
// the per-flow fair-share cap bounds its occupancy, so well-behaved flows
// keep completing and the flood's drops are charged to the flood alone.
TEST(EngineBackpressure, FairShareCapContainsAPathologicalFlow) {
    fleet_config cfg;
    cfg.flows = 5;
    cfg.shards = 1;
    cfg.per_flow_queue_cap = 8;
    cfg.defaults = small_flow();
    cfg.per_flow = [](std::uint32_t f, flow_config& fc) {
        if (f == 0) {
            fc.file_bytes = 24 * 1024;
            fc.packet_wire_bytes = 256;  // windowfuls of tiny segments
        }
    };
    const fleet_report report = run_fleet_native<cipher>(cfg);

    ASSERT_EQ(report.flows.size(), 5u);
    const flow_outcome& flood = report.flows[0];
    // The flood's window bursts exceeded its fair share and were dropped —
    // charged to the flood's own tag.
    EXPECT_GT(flood.queue_dropped, 0u);
    // Every flow still ends explicitly; the well-behaved ones complete
    // untouched by the flood's backpressure.
    for (std::uint32_t f = 1; f < 5; ++f) {
        EXPECT_TRUE(report.flows[f].completed) << "flow " << f;
        EXPECT_TRUE(report.flows[f].verified) << "flow " << f;
        EXPECT_EQ(report.flows[f].queue_dropped, 0u) << "flow " << f;
    }
    EXPECT_TRUE(flood.completed || flood.gave_up || flood.deadline_exceeded);
    EXPECT_GT(report.metrics.counter("engine.queue_dropped"), 0u);
}

// --- chaos -----------------------------------------------------------------

void burst_loss(flow_config& fc) {
    fc.forward_faults.burst.enabled = true;
    fc.forward_faults.burst.p_good_to_bad = 0.05;
    fc.forward_faults.burst.p_bad_to_good = 0.3;
    fc.forward_faults.burst.bad_loss = 1.0;
}

TEST(EngineChaos, LossyFlowsEndExplicitlyCleanFlowsComplete) {
    fleet_config cfg;
    cfg.flows = 40;
    cfg.shards = 4;
    cfg.defaults = small_flow();
    cfg.per_flow = [](std::uint32_t f, flow_config& fc) {
        if (f % 10 == 0) burst_loss(fc);  // 10% of flows on a bursty link
    };
    const fleet_report report = run_fleet_native<cipher>(cfg);

    ASSERT_EQ(report.flows.size(), 40u);
    for (const flow_outcome& o : report.flows) {
        // No silent outcome: exactly one terminal flag.
        const int flags = (o.completed ? 1 : 0) + (o.gave_up ? 1 : 0) +
                          (o.deadline_exceeded ? 1 : 0) +
                          (o.request_rejected ? 1 : 0) +
                          (o.ports_exhausted ? 1 : 0);
        EXPECT_EQ(flags, 1) << "flow " << o.flow_id;
        if (o.completed) {
            EXPECT_TRUE(o.verified) << "flow " << o.flow_id;
        }
        if (o.flow_id % 10 != 0) {
            EXPECT_TRUE(o.completed && o.verified) << "flow " << o.flow_id;
        }
    }
    // The lossy flows actually saw loss (their tags' own coin streams).
    EXPECT_GT(report.metrics.counter("engine.reply_packets_dropped"), 0u);
    EXPECT_EQ(report.shards.size(), 4u);
}

// --- composition-legality gate ---------------------------------------------

// A crc32 tap on the B,C,A send schedule composes an illegal graph (R1):
// the gate must demote exactly those flows to the layered path — counted,
// never silent — and the demoted flows must still complete verified.
TEST(EngineGate, IllegalComposedFlowFallsBackToLayeredAndCompletes) {
    fleet_config cfg;
    cfg.flows = 6;
    cfg.shards = 1;
    cfg.defaults = small_flow();
    cfg.per_flow = [](std::uint32_t f, flow_config& fc) {
        fc.tap = f % 2 == 0 ? app::compose_tap::crc32 : app::compose_tap::none;
    };
    const fleet_report report = run_fleet_native<cipher>(cfg);

    ASSERT_EQ(report.flows.size(), 6u);
    for (const flow_outcome& o : report.flows) {
        EXPECT_TRUE(o.completed && o.verified) << "flow " << o.flow_id;
        EXPECT_EQ(o.composed_fallback, o.flow_id % 2 == 0)
            << "flow " << o.flow_id;
    }
    // Every ILP flow was gated (send + receive graph) and each demoted flow
    // counted one fallback; identical graphs across flows hit the verdict
    // cache rather than re-running the composer.
    EXPECT_EQ(report.metrics.counter("analysis.gate.fallbacks"), 3u);
    EXPECT_GE(report.metrics.counter("analysis.gate.checks"), 12u);
    EXPECT_GT(report.metrics.counter("analysis.gate.cache_hits"), 0u);
    ASSERT_EQ(report.shards.size(), 1u);
    EXPECT_EQ(report.shards[0].gate.fallbacks, 3u);
}

// A legal tap (inet2 runs at the checksum's natural unit, legal anywhere)
// must pass the gate untouched: no demotion, fused path kept.
TEST(EngineGate, LegalTapStaysOnTheFusedPath) {
    shard_options opts;
    test_shard s(0, opts, direct_memory{}, direct_memory{});
    const cipher c = make_cipher(1);
    flow_config fc = small_flow();
    fc.tap = app::compose_tap::inet2;
    ASSERT_TRUE(s.open_flow(0, fc, c, c));
    s.run();
    EXPECT_TRUE(s.outcome(0).completed && s.outcome(0).verified);
    EXPECT_FALSE(s.outcome(0).composed_fallback);
    EXPECT_EQ(s.gate().stats().fallbacks, 0u);
    EXPECT_EQ(s.gate().stats().checks, 2u);  // send + receive graph
}

// --- determinism contract --------------------------------------------------

fleet_config invariance_config(std::uint32_t shards, bool threaded = false) {
    fleet_config cfg;
    cfg.flows = 12;
    cfg.shards = shards;
    cfg.threaded = threaded;
    cfg.policy = sched_policy::deficit_round_robin;
    cfg.defaults = small_flow();
    cfg.per_flow = [](std::uint32_t f, flow_config& fc) {
        if (f % 4 == 0) burst_loss(fc);
    };
    return cfg;
}

TEST(EngineDeterminism, SameSeedSameDigest) {
    const fleet_report a = run_fleet_native<cipher>(invariance_config(2));
    const fleet_report b = run_fleet_native<cipher>(invariance_config(2));
    EXPECT_EQ(a.digest(), b.digest());
    EXPECT_EQ(a.payload_bytes, b.payload_bytes);
    EXPECT_EQ(a.completed, b.completed);
}

// Per-flow outcomes must not depend on how flows are packed onto shards:
// every per-flow random stream (fault coins, cipher key) is split by flow
// id, and the scheduler couples no two flows.  (Holds with the shared
// kernel queue unbounded; a finite shared queue couples co-located flows by
// design.)
TEST(EngineDeterminism, ShardCountDoesNotChangePerFlowOutcomes) {
    const fleet_report one = run_fleet_native<cipher>(invariance_config(1));
    const fleet_report four = run_fleet_native<cipher>(invariance_config(4));
    EXPECT_EQ(one.digest(), four.digest());
    ASSERT_EQ(one.flows.size(), four.flows.size());
    for (std::size_t i = 0; i < one.flows.size(); ++i) {
        EXPECT_EQ(one.flows[i].payload_bytes, four.flows[i].payload_bytes);
        EXPECT_EQ(one.flows[i].elapsed_us, four.flows[i].elapsed_us);
        EXPECT_EQ(one.flows[i].rpc_retries, four.flows[i].rpc_retries);
    }
}

// One OS thread per shard must be behaviourally identical to running the
// shards serially — shards share nothing.  (This test is the TSan target.)
TEST(EngineDeterminism, ThreadedShardsMatchSerialExecution) {
    const fleet_report serial =
        run_fleet_native<cipher>(invariance_config(4, false));
    const fleet_report threaded =
        run_fleet_native<cipher>(invariance_config(4, true));
    EXPECT_EQ(serial.digest(), threaded.digest());
    EXPECT_EQ(serial.completed, threaded.completed);
    EXPECT_EQ(serial.payload_bytes, threaded.payload_bytes);
}

// --- trace-sampling determinism --------------------------------------------

fleet_config sampled_config(std::uint32_t shards, bool threaded = false,
                            std::uint32_t rate_permyriad = 5'000) {
    fleet_config cfg = invariance_config(shards, threaded);
    cfg.trace_sampler.seed = 0x0b5eed;
    cfg.trace_sampler.rate_permyriad = rate_permyriad;
    return cfg;
}

// Which flows get span-traced is a pure function of (sampler seed, flow
// id): re-packing the fleet onto a different shard count, or running the
// shards on real threads, must select exactly the same flows.  (Runs under
// the TSan CI leg via the EngineDeterminism filter.)
TEST(EngineDeterminism, SampledFlowSetInvariantUnderShardsAndThreads) {
    const fleet_report one = run_fleet_native<cipher>(sampled_config(1));
    const fleet_report four = run_fleet_native<cipher>(sampled_config(4));
    const fleet_report threaded =
        run_fleet_native<cipher>(sampled_config(4, true));
    ASSERT_EQ(one.flows.size(), four.flows.size());
    ASSERT_EQ(one.flows.size(), threaded.flows.size());
    const obs::flow_sampler reference{.seed = 0x0b5eed,
                                      .rate_permyriad = 5'000};
    for (std::size_t i = 0; i < one.flows.size(); ++i) {
        const bool expected = reference.sampled(one.flows[i].flow_id);
        EXPECT_EQ(one.flows[i].trace_sampled, expected);
        EXPECT_EQ(four.flows[i].trace_sampled, expected);
        EXPECT_EQ(threaded.flows[i].trace_sampled, expected);
    }
    EXPECT_EQ(one.trace_sampled, four.trace_sampled);
    EXPECT_EQ(one.trace_sampled, threaded.trace_sampled);
    // Non-vacuous at 50%: some but not all of the 12 flows selected.
    EXPECT_GT(one.trace_sampled, 0u);
    EXPECT_LT(one.trace_sampled, one.flows.size());
}

// Sampling gates only what the tracer ring keeps; the transfers themselves
// must be bit-identical whether the fleet samples nothing, everything, or
// some deterministic subset.
TEST(EngineDeterminism, SamplingRateCannotPerturbOutcomes) {
    const fleet_report none =
        run_fleet_native<cipher>(sampled_config(4, false, 0));
    const fleet_report half =
        run_fleet_native<cipher>(sampled_config(4, false, 5'000));
    const fleet_report all =
        run_fleet_native<cipher>(sampled_config(4, false, 10'000));
    EXPECT_EQ(none.digest(), half.digest());
    EXPECT_EQ(none.digest(), all.digest());
    EXPECT_EQ(none.trace_sampled, 0u);
    EXPECT_EQ(all.trace_sampled, all.flows.size());
}

// --- pipelined-dataplane determinism ---------------------------------------

// invariance_config with every flow opted into the pipelined reply path:
// depth slots in flight, k segments per stage-A burst, optionally stepping
// the fused stage on a dedicated worker thread per shard.
fleet_config pipelined_config(std::size_t depth, std::size_t k,
                              bool workers = false, std::uint32_t shards = 4,
                              bool threaded = false) {
    fleet_config cfg = invariance_config(shards, threaded);
    cfg.pipeline_workers = workers;
    const auto faults = cfg.per_flow;
    cfg.per_flow = [=](std::uint32_t f, flow_config& fc) {
        if (faults) faults(f, fc);
        fc.pipeline_depth = depth;
        fc.pipeline_batch = k;
    };
    return cfg;
}

// The tentpole contract: pipelining the reply path over SPSC rings is a
// scheduling transformation, not a behavioural one.  The fleet digest must
// be bit-identical to the serial path for every ring depth and batch size.
TEST(EngineDeterminism, PipelinedDigestMatchesSerialAcrossBatchSizes) {
    const fleet_report serial = run_fleet_native<cipher>(invariance_config(4));
    for (const std::size_t k : {std::size_t{1}, std::size_t{4},
                                std::size_t{16}}) {
        const fleet_report piped =
            run_fleet_native<cipher>(pipelined_config(4, k));
        EXPECT_EQ(serial.digest(), piped.digest()) << "k=" << k;
        EXPECT_EQ(serial.payload_bytes, piped.payload_bytes) << "k=" << k;
        EXPECT_EQ(serial.completed, piped.completed) << "k=" << k;
        // Non-vacuous: the pipelined path actually carried the segments.
        EXPECT_GT(piped.metrics.counter("pipeline.segments"), 0u)
            << "k=" << k;
        EXPECT_GT(piped.metrics.counter("pipeline.batches"), 0u) << "k=" << k;
    }
    EXPECT_EQ(serial.metrics.counter("pipeline.segments"), 0u);
}

// Ring depth only bounds how many segments are in flight; depth 1 (a
// mailbox pipeline) and a deep ring must agree with each other and with a
// fleet where only some flows opted in.
TEST(EngineDeterminism, PipelineDepthAndPartialOptInAreDigestNeutral) {
    const fleet_report shallow =
        run_fleet_native<cipher>(pipelined_config(1, 1));
    const fleet_report deep = run_fleet_native<cipher>(pipelined_config(8, 4));
    fleet_config mixed = invariance_config(4);
    const auto faults = mixed.per_flow;
    mixed.per_flow = [=](std::uint32_t f, flow_config& fc) {
        if (faults) faults(f, fc);
        if (f % 2 == 0) fc.pipeline_depth = 4;  // half pipelined, half serial
    };
    const fleet_report half = run_fleet_native<cipher>(mixed);
    EXPECT_EQ(shallow.digest(), deep.digest());
    EXPECT_EQ(shallow.digest(), half.digest());
}

// Stepping the fused stage on a real worker thread per shard — on top of
// one OS thread per shard — must still produce the serial digest.  (Runs
// under the TSan CI leg via the EngineDeterminism filter: this is the test
// that pins down the SPSC hand-off between shard and fused-stage worker.)
TEST(EngineDeterminism, ThreadedPipelineWorkersMatchInlineStepping) {
    const fleet_report serial = run_fleet_native<cipher>(invariance_config(4));
    const fleet_report inline_piped =
        run_fleet_native<cipher>(pipelined_config(4, 4, false));
    const fleet_report worker_piped =
        run_fleet_native<cipher>(pipelined_config(4, 4, true, 4, true));
    EXPECT_EQ(serial.digest(), inline_piped.digest());
    EXPECT_EQ(serial.digest(), worker_piped.digest());
    EXPECT_EQ(serial.payload_bytes, worker_piped.payload_bytes);
    // The worker leg really ran threaded (native memory: no demotion).
    bool any_threaded = false;
    for (const shard_summary& s : worker_piped.shards) {
        any_threaded = any_threaded || s.pipeline_threaded;
    }
    EXPECT_TRUE(any_threaded);
    for (const shard_summary& s : inline_piped.shards) {
        EXPECT_FALSE(s.pipeline_threaded);
    }
}

// Secure flows add the one ordering hazard the pipeline must respect: a
// rekey is a barrier (stage A predicts the epoch crossing and the shard
// drains the rings before segmentizing past it).  Staggered rekey cadence
// plus bursty loss, serial vs pipelined vs worker-threaded pipelined, must
// agree — including the digest-relevant epoch_window_hits.
TEST(EngineDeterminism, PipelinedSecureRekeyMatchesSerial) {
    auto secure_cfg = [](std::size_t depth, std::size_t k, bool workers,
                         bool threaded) {
        fleet_config cfg;
        cfg.flows = 12;
        cfg.shards = 4;
        cfg.threaded = threaded;
        cfg.pipeline_workers = workers;
        cfg.defaults = small_flow(8 * 1024);
        cfg.defaults.packet_wire_bytes = 512;
        cfg.defaults.secure = true;
        cfg.per_flow = [=](std::uint32_t f, flow_config& fc) {
            fc.rekey_interval_bytes = 1024 + 512 * (f % 4);
            if (f % 4 == 0) burst_loss(fc);
            fc.pipeline_depth = depth;
            fc.pipeline_batch = k;
        };
        return cfg;
    };
    const auto serial =
        run_fleet_native<crypto::aead_cipher>(secure_cfg(0, 4, false, false));
    const auto piped =
        run_fleet_native<crypto::aead_cipher>(secure_cfg(4, 4, false, false));
    const auto workers =
        run_fleet_native<crypto::aead_cipher>(secure_cfg(4, 16, true, true));
    EXPECT_EQ(serial.digest(), piped.digest());
    EXPECT_EQ(serial.digest(), workers.digest());
    // Non-vacuous: rekeys actually happened on the pipelined legs.
    EXPECT_GT(piped.metrics.counter("engine.crypto.rekeys"), 0u);
    EXPECT_GT(workers.metrics.counter("pipeline.segments"), 0u);
}

}  // namespace
}  // namespace ilp::engine
