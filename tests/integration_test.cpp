// System-level integration sweeps: the full application (client + server +
// TCP + kernel part) under a matrix of fault profiles, path modes and
// framing parameters — every combination must deliver byte-identical data
// or fail loudly, never silently corrupt.
#include <gtest/gtest.h>

#include "app/harness.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"

namespace ilp::app {
namespace {

using crypto::safer_simplified;

struct fault_scenario {
    const char* name;
    double drop, duplicate, corrupt, reorder;
};

constexpr fault_scenario scenarios[] = {
    {"clean", 0, 0, 0, 0},
    {"lossy", 0.15, 0, 0, 0},
    {"duplicating", 0, 0.2, 0, 0},
    {"corrupting", 0, 0, 0.15, 0},
    {"reordering", 0, 0, 0, 0.2},
    {"hostile", 0.08, 0.08, 0.08, 0.08},
};

class FaultMatrix
    : public ::testing::TestWithParam<std::tuple<int, path_mode>> {};

TEST_P(FaultMatrix, TransferSurvivesOrFailsLoudly) {
    const auto& [scenario_index, mode] = GetParam();
    const fault_scenario& s = scenarios[scenario_index];

    transfer_config config;
    config.mode = mode;
    config.file_bytes = 10 * 1024;
    config.packet_wire_bytes = 512;
    config.forward_faults.drop_probability = s.drop;
    config.forward_faults.duplicate_probability = s.duplicate;
    config.forward_faults.corrupt_probability = s.corrupt;
    config.forward_faults.reorder_probability = s.reorder;
    config.forward_faults.seed = 1000 + scenario_index;
    // Stress the reverse (ACK) path too, at half intensity.
    config.reverse_faults.drop_probability = s.drop / 2;
    config.reverse_faults.seed = 2000 + scenario_index;

    const transfer_result result =
        run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed) << s.name;
    // The one inviolable property: whatever the link does, accepted data is
    // byte-identical to the original.
    EXPECT_TRUE(result.verified) << s.name;
    EXPECT_EQ(result.payload_bytes_delivered, config.file_bytes) << s.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllScenarios, FaultMatrix,
    ::testing::Combine(::testing::Range(0, 6),
                       ::testing::Values(path_mode::ilp, path_mode::layered)),
    [](const ::testing::TestParamInfo<std::tuple<int, path_mode>>& param) {
        return std::string(scenarios[std::get<0>(param.param)].name) +
               (std::get<1>(param.param) == path_mode::ilp ? "_ilp"
                                                           : "_layered");
    });

TEST(Integration, BackToBackTransfersOnFreshHarnesses) {
    // Determinism at system scale: the same configuration always produces
    // the same message counts, virtual-time trace and statistics.
    transfer_config config;
    config.file_bytes = 4096;
    config.forward_faults.drop_probability = 0.1;
    config.forward_faults.seed = 7;
    const auto a = run_transfer_native<safer_simplified>(config);
    const auto b = run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(a.completed && b.completed);
    EXPECT_EQ(a.elapsed_us, b.elapsed_us);
    EXPECT_EQ(a.reply_tcp_sender.retransmissions,
              b.reply_tcp_sender.retransmissions);
    EXPECT_EQ(a.reply_pipe.bytes_sent, b.reply_pipe.bytes_sent);
}

TEST(Integration, ZeroCopyAndFaultsCompose) {
    transfer_config config;
    config.zero_copy = true;
    config.file_bytes = 6 * 1024;
    config.forward_faults.drop_probability = 0.1;
    config.forward_faults.corrupt_probability = 0.1;
    config.forward_faults.seed = 5;
    const auto result = run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_GT(result.reply_tcp_receiver.checksum_failures, 0u);
}

TEST(Integration, LargeTransferManyPackets) {
    transfer_config config;
    config.file_bytes = 256 * 1024;  // 257 packets at 1 KB
    config.deadline_us = 600'000'000;
    const auto result = run_transfer_native<crypto::simple_cipher>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_GE(result.reply_messages, 257u);
}

TEST(Integration, SimulatorDeterminism) {
    // Two identical simulated runs produce bit-identical access statistics.
    transfer_config config;
    config.file_bytes = 4096;
    memsim::memory_system c1(memsim::supersparc_with_l2());
    memsim::memory_system s1(memsim::supersparc_with_l2());
    memsim::memory_system c2(memsim::supersparc_with_l2());
    memsim::memory_system s2(memsim::supersparc_with_l2());
    const auto a = run_transfer_simulated<safer_simplified>(config, c1, s1);
    const auto b = run_transfer_simulated<safer_simplified>(config, c2, s2);
    ASSERT_TRUE(a.completed && b.completed);
    // The access *stream* is fully deterministic...
    EXPECT_EQ(s1.data_stats().total_accesses(),
              s2.data_stats().total_accesses());
    EXPECT_EQ(c1.data_stats().total_accesses(),
              c2.data_stats().total_accesses());
    // ...while miss/cycle counts depend on the heap addresses the allocator
    // hands out, which differ between back-to-back runs inside one process
    // (cache set conflicts move around).  They must still agree closely.
    const auto near = [](std::uint64_t x, std::uint64_t y) {
        const double hi = static_cast<double>(std::max(x, y));
        const double lo = static_cast<double>(std::min(x, y));
        return lo >= 0.98 * hi;
    };
    EXPECT_TRUE(near(s1.data_stats().total_misses(),
                     s2.data_stats().total_misses()));
    EXPECT_TRUE(near(c1.cycles(), c2.cycles()));
}

}  // namespace
}  // namespace ilp::app
