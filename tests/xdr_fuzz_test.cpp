// Adversarial-input tests: the XDR reader and the RPC unmarshallers must
// survive arbitrary byte streams without crashing, reading out of bounds,
// or accepting structurally impossible messages.
#include <gtest/gtest.h>

#include <vector>

#include "rpc/messages.h"
#include "rpc/trailer.h"
#include "util/rng.h"
#include "xdr/xdr.h"

namespace ilp {
namespace {

TEST(XdrFuzz, RandomBytesNeverCrashTheReader) {
    rng r(1);
    for (int trial = 0; trial < 500; ++trial) {
        std::vector<std::byte> junk(r.next_below(64));
        r.fill(junk);
        xdr::reader reader(junk);
        // Drive a representative decode sequence; whatever happens, the
        // reader must stay in bounds and report via ok().
        reader.get_u32();
        reader.get_string(32);
        reader.get_i32_array(16);
        reader.get_opaque(32);
        reader.get_bool();
        reader.get_u64();
        if (reader.ok()) {
            EXPECT_LE(reader.position(), junk.size());
        }
    }
}

TEST(XdrFuzz, TruncationAtEveryPointIsDetected) {
    // A valid encoded message, truncated at every possible length: decoding
    // must either succeed on the full prefix structure or set !ok, never
    // read past the end.
    std::vector<std::byte> buf(128);
    xdr::writer w(buf);
    w.put_u32(7).put_string("filename.bin").put_i32_array({{1, 2, 3}});
    ASSERT_TRUE(w.ok());
    const std::size_t full = w.position();

    for (std::size_t cut = 0; cut < full; ++cut) {
        xdr::reader r({buf.data(), cut});
        r.get_u32();
        r.get_string(64);
        r.get_i32_array(8);
        EXPECT_FALSE(r.ok()) << "cut at " << cut;
    }
    xdr::reader r({buf.data(), full});
    EXPECT_EQ(r.get_u32(), 7u);
    EXPECT_EQ(r.get_string(64), "filename.bin");
    EXPECT_EQ(r.get_i32_array(8), (std::vector<std::int32_t>{1, 2, 3}));
    EXPECT_TRUE(r.ok());
}

TEST(RpcFuzz, RandomWiresNeverParseAsRequests) {
    rng r(2);
    int accepted = 0;
    for (int trial = 0; trial < 1000; ++trial) {
        std::vector<std::byte> junk(8 * (1 + r.next_below(16)));
        r.fill(junk);
        if (rpc::unmarshal_request(junk).has_value()) ++accepted;
    }
    // A random wire must virtually never satisfy length + type + structure.
    EXPECT_EQ(accepted, 0);
}

TEST(RpcFuzz, BitflippedValidRequestIsMostlyRejected) {
    rpc::file_request request;
    request.request_id = 3;
    request.filename = "data.bin";
    request.copy_count = 2;
    request.max_reply_payload = 512;
    alignas(8) std::byte wire[128];
    const auto len = rpc::marshal_request(request, wire);
    ASSERT_TRUE(len.has_value());

    rng r(3);
    int structural_bytes_accepted = 0;
    // Flips in *structural* bytes — the encryption-header length word, the
    // msg_type word and the string length word — must always be rejected;
    // flips in free value fields (ids, counts, filename characters) are
    // legitimately still parseable.
    const auto is_structural = [](std::size_t offset) {
        return offset < 12 /* length + type + wire version */ ||
               (offset >= 16 && offset < 20) /* filename length word */;
    };
    constexpr int trials = 500;
    for (int t = 0; t < trials; ++t) {
        std::byte mutated[128];
        std::memcpy(mutated, wire, *len);
        const std::size_t at = r.next_below(*len);
        mutated[at] ^= static_cast<std::byte>(1u << r.next_below(8));
        const bool parsed =
            rpc::unmarshal_request({mutated, *len}).has_value();
        if (parsed && is_structural(at)) ++structural_bytes_accepted;
    }
    EXPECT_EQ(structural_bytes_accepted, 0);
}

TEST(RpcFuzz, HeaderDecodersRejectRandomBlocks) {
    rng r(4);
    int trailer_hits = 0;
    for (int trial = 0; trial < 2000; ++trial) {
        std::byte block[8];
        r.fill(block);
        if (rpc::read_trailer(block, 64).has_value()) ++trailer_hits;
        (void)rpc::decode_reply_header(
            std::span<const std::byte>{block, 8});  // must not crash
    }
    // The trailer magic makes random acceptance ~2^-32.
    EXPECT_EQ(trailer_hits, 0);
}

}  // namespace
}  // namespace ilp
