// Tests of the platform timing models: every structural claim the paper
// makes about its evaluation must hold in the reproduction — who wins, how
// gains scale with packet size and machine, and the machine-specific
// anomalies (no-L2 dip, Alpha I-cache, OSF/1 overhead).
#include <gtest/gtest.h>

#include "crypto/safer_simplified.h"
#include "platform/estimator.h"
#include "platform/machines.h"

namespace ilp::platform {
namespace {

experiment_result standard(const std::string& machine_name, impl_kind impl,
                           std::size_t packet = 1024,
                           cipher_kind cipher = cipher_kind::safer_simplified) {
    return run_standard_experiment(machine(machine_name), impl, cipher, packet);
}

TEST(Machines, AllSevenDefined) {
    const auto machines = paper_machines();
    ASSERT_EQ(machines.size(), 7u);
    EXPECT_EQ(machines.front().name, "ss10-30");
    EXPECT_EQ(machines.back().name, "axp3000-800");
    for (const auto& m : machines) {
        EXPECT_GT(m.clock_mhz, 0);
        EXPECT_GT(m.control_cycles_per_packet, 0);
    }
}

TEST(Estimator, IlpBeatsLayeredOnEveryMachine) {
    // Table 1: ILP packet processing is faster on every platform for 1 KB
    // packets, send and receive.
    for (const auto& m : paper_machines()) {
        const auto ilp = run_standard_experiment(
            m, impl_kind::ilp, cipher_kind::safer_simplified, 1024);
        const auto lay = run_standard_experiment(
            m, impl_kind::layered, cipher_kind::safer_simplified, 1024);
        ASSERT_TRUE(ilp.completed && lay.completed) << m.name;
        EXPECT_LT(ilp.send_us_per_packet, lay.send_us_per_packet) << m.name;
        EXPECT_LE(ilp.recv_us_per_packet, lay.recv_us_per_packet) << m.name;
        EXPECT_GT(ilp.throughput_mbps, lay.throughput_mbps) << m.name;
    }
}

TEST(Estimator, SparcGainsInPaperRange) {
    // Paper §4.1: 16 % send gain on the SS10-30, 58 us absolute.
    const auto ilp = standard("ss10-30", impl_kind::ilp);
    const auto lay = standard("ss10-30", impl_kind::layered);
    const double gain =
        (lay.send_us_per_packet - ilp.send_us_per_packet) /
        lay.send_us_per_packet;
    EXPECT_GT(gain, 0.10);
    EXPECT_LT(gain, 0.30);
    // Absolute packet processing times are in the paper's range (hundreds
    // of microseconds at 36 MHz).
    EXPECT_GT(ilp.send_us_per_packet, 200);
    EXPECT_LT(lay.send_us_per_packet, 600);
}

TEST(Estimator, AlphaGainsSmallerThanSparc) {
    // Paper §4.1: "The benefits of ILP on DEC AXP3000 workstations are
    // smaller than on the SUN SPARCstations."
    const auto sparc_ilp = standard("ss20-60", impl_kind::ilp);
    const auto sparc_lay = standard("ss20-60", impl_kind::layered);
    const auto alpha_ilp = standard("axp3000-800", impl_kind::ilp);
    const auto alpha_lay = standard("axp3000-800", impl_kind::layered);
    const double sparc_gain =
        (sparc_lay.send_us_per_packet - sparc_ilp.send_us_per_packet) /
        sparc_lay.send_us_per_packet;
    const double alpha_gain =
        (alpha_lay.send_us_per_packet - alpha_ilp.send_us_per_packet) /
        alpha_lay.send_us_per_packet;
    EXPECT_GT(sparc_gain, alpha_gain);
    EXPECT_GE(alpha_gain, 0.0);  // ILP still does not lose outright
}

TEST(Estimator, AlphaIcacheMissesHigherForIlp) {
    // Paper §4.2: on the Alpha the ILP case shows markedly more instruction
    // cache misses; on the SuperSPARC I-cache misses are negligible and
    // equal.
    const auto alpha_ilp = standard("axp3000-800", impl_kind::ilp);
    const auto alpha_lay = standard("axp3000-800", impl_kind::layered);
    EXPECT_GT(alpha_ilp.send_icache_misses, 5 * alpha_lay.send_icache_misses);

    const auto sparc_ilp = standard("ss20-60", impl_kind::ilp);
    const auto sparc_lay = standard("ss20-60", impl_kind::layered);
    EXPECT_EQ(sparc_ilp.send_icache_misses, sparc_lay.send_icache_misses);
}

TEST(Estimator, GainGrowsWithPacketSize) {
    // Paper §4.1: "the performance gaps between the ILP and the non-ILP
    // implementations increase nearly proportionally to the packet size."
    double previous_gap = 0;
    for (const std::size_t size : {256u, 512u, 768u, 1024u, 1280u}) {
        const auto ilp = standard("ss10-41", impl_kind::ilp, size);
        const auto lay = standard("ss10-41", impl_kind::layered, size);
        const double gap = lay.send_us_per_packet - ilp.send_us_per_packet;
        EXPECT_GT(gap, previous_gap) << "size " << size;
        previous_gap = gap;
    }
}

TEST(Estimator, ThroughputIncreasesWithPacketSize) {
    double previous = 0;
    for (const std::size_t size : {256u, 512u, 768u, 1024u, 1280u}) {
        const auto r = standard("ss20-60", impl_kind::ilp, size);
        EXPECT_GT(r.throughput_mbps, previous) << "size " << size;
        previous = r.throughput_mbps;
    }
}

TEST(Estimator, KernelTcpFastestOverallButIlpWinsReceiveProcessing) {
    // Fig. 12: kernel TCP > user ILP > user non-ILP in throughput; yet the
    // user-level ILP *receive processing* beats the kernel path's layered
    // manipulations (§4.1's closing observation).
    const auto kernel = standard("ss10-30", impl_kind::kernel_tcp);
    const auto ilp = standard("ss10-30", impl_kind::ilp);
    const auto lay = standard("ss10-30", impl_kind::layered);
    EXPECT_GT(kernel.throughput_mbps, ilp.throughput_mbps);
    EXPECT_GT(ilp.throughput_mbps, lay.throughput_mbps);
    EXPECT_LT(ilp.recv_us_per_packet, kernel.recv_us_per_packet);
}

TEST(Estimator, SimpleCipherShowsLargerRelativeGain) {
    // Fig. 11: replacing the simplified SAFER with the constant-based cipher
    // raises the relative ILP improvement (32-40 % vs ~16 %).
    const auto safer_ilp =
        standard("ss10-30", impl_kind::ilp, 1024, cipher_kind::safer_simplified);
    const auto safer_lay = standard("ss10-30", impl_kind::layered, 1024,
                                    cipher_kind::safer_simplified);
    const auto simple_ilp =
        standard("ss10-30", impl_kind::ilp, 1024, cipher_kind::simple);
    const auto simple_lay =
        standard("ss10-30", impl_kind::layered, 1024, cipher_kind::simple);
    const double safer_gain =
        (safer_lay.send_us_per_packet - safer_ilp.send_us_per_packet) /
        safer_lay.send_us_per_packet;
    const double simple_gain =
        (simple_lay.send_us_per_packet - simple_ilp.send_us_per_packet) /
        simple_lay.send_us_per_packet;
    EXPECT_GT(simple_gain, safer_gain);
    // And the absolute packet processing is much faster with the simple
    // cipher (paper: 150 vs 311 us on the SS10-30).
    EXPECT_LT(simple_ilp.send_us_per_packet,
              0.8 * safer_ilp.send_us_per_packet);
}

TEST(Estimator, FullSaferHidesIlpGain) {
    // The reason the paper simplified SAFER in the first place (§3.1, citing
    // [4]): with an expensive cipher the relative ILP gain nearly vanishes.
    const auto full_ilp =
        standard("ss10-30", impl_kind::ilp, 1024, cipher_kind::safer_full);
    const auto full_lay =
        standard("ss10-30", impl_kind::layered, 1024, cipher_kind::safer_full);
    const auto simplified_ilp = standard("ss10-30", impl_kind::ilp, 1024,
                                         cipher_kind::safer_simplified);
    const auto simplified_lay = standard("ss10-30", impl_kind::layered, 1024,
                                         cipher_kind::safer_simplified);
    const double full_gain =
        (full_lay.send_us_per_packet - full_ilp.send_us_per_packet) /
        full_lay.send_us_per_packet;
    const double simplified_gain =
        (simplified_lay.send_us_per_packet -
         simplified_ilp.send_us_per_packet) /
        simplified_lay.send_us_per_packet;
    EXPECT_LT(full_gain, 0.5 * simplified_gain);
}

TEST(Estimator, MemoryAccessReductionMatchesFig13Shape) {
    // Fig. 13: ILP cuts both read and write accesses on the send side; the
    // cipher's table reads (1-byte accesses) are unchanged.
    const auto ilp = standard("ss10-41", impl_kind::ilp);
    const auto lay = standard("ss10-41", impl_kind::layered);
    EXPECT_LT(ilp.send_accesses.reads.total_accesses(),
              lay.send_accesses.reads.total_accesses());
    EXPECT_LT(ilp.send_accesses.writes.total_accesses(),
              lay.send_accesses.writes.total_accesses());
    EXPECT_EQ(ilp.send_accesses.reads.accesses[memsim::size_bucket(1)],
              lay.send_accesses.reads.accesses[memsim::size_bucket(1)]);
}

TEST(Estimator, IlpRaisesMissRatioWithTableCipher) {
    // §4.2's surprise: ILP reduces accesses more than misses, so the miss
    // *ratio* goes up with the table-driven cipher.
    const auto ilp = standard("ss10-30", impl_kind::ilp);
    const auto lay = standard("ss10-30", impl_kind::layered);
    EXPECT_GT(ilp.recv_accesses.miss_ratio(), lay.recv_accesses.miss_ratio());
}

TEST(Estimator, SecondLevelCacheAbsorbsRetraversalMisses) {
    // The SS10-30 has no second-level cache (§4.1); when the workload
    // re-reads data that the packet traffic evicted from L1 (a second copy
    // of the same file), the L2 machines absorb those misses while the
    // SS10-30 pays main memory each time.  Compare raw memory-system cycles
    // of identical transfers under both cache configurations.
    app::transfer_config config;
    config.file_bytes = 15 * 1024;
    config.copies = 3;  // copies 2..3 re-read the file buffer

    memsim::memory_system no_l2_client(memsim::supersparc_no_l2());
    memsim::memory_system no_l2_server(memsim::supersparc_no_l2());
    const auto no_l2 = app::run_transfer_simulated<crypto::safer_simplified>(
        config, no_l2_client, no_l2_server);

    memsim::memory_system l2_client(memsim::supersparc_with_l2());
    memsim::memory_system l2_server(memsim::supersparc_with_l2());
    const auto with_l2 = app::run_transfer_simulated<crypto::safer_simplified>(
        config, l2_client, l2_server);

    ASSERT_TRUE(no_l2.completed && with_l2.completed);
    // Same access stream...
    EXPECT_EQ(no_l2_server.data_stats().total_accesses(),
              l2_server.data_stats().total_accesses());
    // ...but more expensive without the SuperCache on the side that
    // re-traverses data (the server re-reads the file for every copy; the
    // client only writes fresh buffers, so its misses are compulsory and an
    // L2 cannot help there).
    EXPECT_GT(no_l2_server.cycles(), l2_server.cycles());
    const double client_ratio = static_cast<double>(no_l2_client.cycles()) /
                                static_cast<double>(l2_client.cycles());
    EXPECT_GT(client_ratio, 0.95);  // compulsory-miss bound: near parity
}

TEST(Estimator, ProcessingTimeUnitsAreSane) {
    for (const auto& m : paper_machines()) {
        const auto r = run_standard_experiment(
            m, impl_kind::ilp, cipher_kind::safer_simplified, 1024);
        ASSERT_TRUE(r.completed);
        EXPECT_GT(r.send_us_per_packet, 50) << m.name;
        EXPECT_LT(r.send_us_per_packet, 1000) << m.name;
        EXPECT_GT(r.throughput_mbps, 1) << m.name;
        EXPECT_LT(r.throughput_mbps, 50) << m.name;
    }
}

}  // namespace
}  // namespace ilp::platform
