// Zero-copy receive path: the datagram pipe's loaned-segment delivery, the
// TCP receiver's in-place chain processing, and the accounting contract —
// what the memory model counts is what the code actually touches (the old
// "remap" mode skipped the accounting but still performed the copy; these
// tests pin the honest behaviour on both paths).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "app/harness.h"
#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "crypto/aead.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "memsim/mem_policy.h"
#include "memsim/touch_map.h"
#include "net/datagram.h"
#include "tcp/connection.h"
#include "tcp/header.h"
#include "util/endian.h"
#include "util/rng.h"

namespace ilp {
namespace {

using memsim::direct_memory;

std::vector<std::byte> random_payload(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng(seed).fill(v);
    return v;
}

// Crafts one valid data segment addressed to a receiver running `cfg`.
std::vector<std::byte> data_segment(const tcp::connection_config& cfg,
                                    std::uint32_t seq,
                                    std::span<const std::byte> payload) {
    tcp::header_fields h;
    h.src_port = cfg.remote_port;
    h.dst_port = cfg.local_port;
    h.seq = seq;
    h.control = tcp::flags::ack;
    std::vector<std::byte> pkt(tcp::header_bytes + payload.size());
    tcp::serialize_header(h, std::span(pkt).first(tcp::header_bytes));
    std::memcpy(pkt.data() + tcp::header_bytes, payload.data(),
                payload.size());
    checksum::inet_accumulator acc;
    acc.add_bytes(direct_memory{}, payload, 2);
    const std::uint16_t c = tcp::finish_segment_checksum(
        cfg.remote_addr, cfg.local_addr,
        std::span(pkt).first(tcp::header_bytes), acc.folded(),
        payload.size());
    store_be16(pkt.data() + 16, c);
    return pkt;
}

// Asserts every byte of a watched range saw exactly (reads, writes).
void expect_touches(const memsim::touch_map& map, const char* label,
                    std::uint32_t reads, std::uint32_t writes) {
    const std::size_t ri = map.find(label);
    ASSERT_NE(ri, memsim::touch_map::npos) << label;
    for (std::size_t i = 0; i < map.size(ri); ++i) {
        ASSERT_EQ(map.at(ri, i).reads, reads) << label << " byte " << i;
        ASSERT_EQ(map.at(ri, i).writes, writes) << label << " byte " << i;
    }
}

// The accounting regression: the staged receive copy must run through the
// memory policy.  The retired "remap" mode set zero_copy and skipped the
// modelled copy while still memcpy'ing — under a touch map the kernel
// packet then showed zero counted reads.  Now the config flag only selects
// the delivery mechanism; any copy that happens is a counted copy.
TEST(ZeroCopyAccounting, StagedCopyIsCountedByTheModel) {
    for (const bool zero_copy : {false, true}) {
        virtual_clock clock;
        net::datagram_pipe ack_pipe(clock, 100);
        tcp::connection_config cfg;
        cfg.zero_copy = zero_copy;
        memsim::memory_system sys(memsim::test_tiny());
        tcp::tcp_receiver<memsim::sim_memory> receiver(
            memsim::sim_memory(sys), clock, ack_pipe, cfg);
        receiver.set_processor([&](std::span<std::byte> p) {
            checksum::inet_accumulator acc;
            acc.add_bytes(direct_memory{}, p, 2);
            return tcp::rx_process_result{acc.folded(), true};
        });

        const auto payload = random_payload(64, 21);
        std::vector<std::byte> pkt =
            data_segment(cfg, cfg.initial_seq, payload);

        memsim::touch_map map;
        map.watch("kernel-packet", pkt.data(), pkt.size());
        sys.set_touch_map(&map);
        receiver.on_packet(pkt);
        sys.set_touch_map(nullptr);

        EXPECT_EQ(receiver.stats().messages_accepted, 1u);
        // The system copy reads the kernel packet exactly once, through the
        // model; nothing writes back into kernel memory.
        expect_touches(map, "kernel-packet", 1, 0);
    }
}

// In-place chain processing: a loaned segment's payload is read exactly
// once, straight out of kernel memory, and never written; the destination
// is written exactly once.  Modelled accesses == actual touches.
TEST(ZeroCopyReceiver, ChainPayloadReadExactlyOnceInPlace) {
    // Split mid-payload and (second iteration) mid-header: the header
    // staging and the fused loop must both walk the wrap correctly.
    for (const std::size_t split : {std::size_t{30}, std::size_t{7}}) {
        virtual_clock clock;
        net::datagram_pipe ack_pipe(clock, 100);
        tcp::connection_config cfg;
        cfg.zero_copy = true;
        memsim::memory_system sys(memsim::test_tiny());
        tcp::tcp_receiver<memsim::sim_memory> receiver(
            memsim::sim_memory(sys), clock, ack_pipe, cfg);

        byte_buffer dest(64);
        receiver.set_chain_processor([&](const const_ring_span& p) {
            checksum::inet_accumulator acc;
            core::checksum_tap8 tap(acc);
            auto loop = core::make_pipeline(tap);
            loop.run(memsim::sim_memory(sys), core::chain_source(p),
                     core::span_dest(dest.span().first(p.size())));
            return tcp::rx_process_result{acc.folded(), true};
        });

        const auto payload = random_payload(64, 22);
        const std::vector<std::byte> pkt =
            data_segment(cfg, cfg.initial_seq, payload);

        // Stage the segment as a wrap-straddling loan: arena tail holds the
        // first `split` bytes, arena head the rest.
        byte_buffer arena(pkt.size() + 32);
        std::byte* piece_a = arena.data() + arena.size() - split;
        std::byte* piece_b = arena.data();
        std::memcpy(piece_a, pkt.data(), split);
        std::memcpy(piece_b, pkt.data() + split, pkt.size() - split);
        const_ring_span loan;
        loan.first = {piece_a, split};
        loan.second = {piece_b, pkt.size() - split};

        memsim::touch_map map;
        map.watch("kernel-a", piece_a, split);
        map.watch("kernel-b", piece_b, pkt.size() - split);
        map.watch("dest", dest.data(), dest.size());
        sys.set_touch_map(&map);
        receiver.on_segment(loan);
        sys.set_touch_map(nullptr);

        EXPECT_EQ(receiver.stats().messages_accepted, 1u) << split;
        EXPECT_EQ(std::memcmp(dest.data(), payload.data(), payload.size()),
                  0)
            << split;
        // Header bytes: staged once (one counted read); payload bytes: the
        // fused loop's single pass (one counted read).  Exactly once each,
        // and the kernel loan is never written.
        expect_touches(map, "kernel-a", 1, 0);
        expect_touches(map, "kernel-b", 1, 0);
        expect_touches(map, "dest", 0, 1);
    }
}

// Without a chain processor (the layered path), a loaned segment falls back
// to a staged copy — an honest, counted copy, after which the span
// processor runs over contiguous memory.
TEST(ZeroCopyReceiver, LayeredFallbackStagesCountedCopy) {
    virtual_clock clock;
    net::datagram_pipe ack_pipe(clock, 100);
    tcp::connection_config cfg;
    cfg.zero_copy = true;
    memsim::memory_system sys(memsim::test_tiny());
    tcp::tcp_receiver<memsim::sim_memory> receiver(memsim::sim_memory(sys),
                                                   clock, ack_pipe, cfg);
    std::vector<std::byte> seen;
    receiver.set_processor([&](std::span<std::byte> p) {
        seen.assign(p.begin(), p.end());
        checksum::inet_accumulator acc;
        acc.add_bytes(direct_memory{}, p, 2);
        return tcp::rx_process_result{acc.folded(), true};
    });

    const auto payload = random_payload(48, 23);
    const std::vector<std::byte> pkt =
        data_segment(cfg, cfg.initial_seq, payload);
    byte_buffer arena(pkt.size() + 16);
    const std::size_t split = 25;
    std::byte* piece_a = arena.data() + arena.size() - split;
    std::memcpy(piece_a, pkt.data(), split);
    std::memcpy(arena.data(), pkt.data() + split, pkt.size() - split);
    const_ring_span loan;
    loan.first = {piece_a, split};
    loan.second = {arena.data(), pkt.size() - split};

    memsim::touch_map map;
    map.watch("kernel-a", piece_a, split);
    map.watch("kernel-b", arena.data(), pkt.size() - split);
    sys.set_touch_map(&map);
    receiver.on_segment(loan);
    sys.set_touch_map(nullptr);

    EXPECT_EQ(receiver.stats().messages_accepted, 1u);
    EXPECT_EQ(seen, payload);
    // Header + payload each staged through the model exactly once.
    expect_touches(map, "kernel-a", 1, 0);
    expect_touches(map, "kernel-b", 1, 0);
}

// The pipe's loan delivery: contents are bit-identical to what was sent,
// and a packet that does not fit contiguously before the ring's end is
// handed out as a genuine two-piece chain.
TEST(ZeroCopyPipe, LoanDeliveryPreservesBytesAndStraddlesTheWrap) {
    virtual_clock clock;
    net::datagram_pipe pipe(clock, 100);
    std::vector<std::vector<std::byte>> got;
    bool straddled = false;
    pipe.set_segment_receiver([&](const const_ring_span& s) {
        if (!s.second.empty()) straddled = true;
        std::vector<std::byte> b(s.first.begin(), s.first.end());
        b.insert(b.end(), s.second.begin(), s.second.end());
        got.push_back(std::move(b));
    });

    // Two max-size packets: the ring holds max_packet_bytes + 512 bytes, so
    // the second delivery cannot fit contiguously and must straddle.
    std::vector<std::vector<std::byte>> sent;
    for (int i = 0; i < 2; ++i) {
        sent.push_back(
            random_payload(net::datagram_pipe::max_packet_bytes, 30 + i));
        pipe.send(direct_memory{}, std::span<const std::byte>(sent.back()));
        clock.advance(200);
    }

    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0], sent[0]);
    EXPECT_EQ(got[1], sent[1]);
    EXPECT_TRUE(straddled);
    EXPECT_EQ(pipe.stats().deliver_crossings, 2u);
}

// End-to-end: with the loan path wired through TCP and the fused app
// receive, zero-copy mode strictly reduces the client's (receive-side)
// modelled memory traffic, and the transfer still verifies — for the plain
// ILP path and for secure framing (clear trailer decoded before the loop).
TEST(ZeroCopyTransfer, ReceiveSideAccessesDropAndTransfersVerify) {
    for (const bool secure : {false, true}) {
        app::transfer_config config;
        config.file_bytes = 8 * 1024;
        config.secure = secure;

        memsim::memory_system zc_client(memsim::supersparc_with_l2());
        memsim::memory_system zc_server(memsim::supersparc_with_l2());
        config.zero_copy = true;
        const auto zc = app::run_transfer_simulated<crypto::aead_cipher>(
            config, zc_client, zc_server);
        ASSERT_TRUE(zc.completed && zc.verified) << "secure=" << secure;

        memsim::memory_system cp_client(memsim::supersparc_with_l2());
        memsim::memory_system cp_server(memsim::supersparc_with_l2());
        config.zero_copy = false;
        const auto cp = app::run_transfer_simulated<crypto::aead_cipher>(
            config, cp_client, cp_server);
        ASSERT_TRUE(cp.completed && cp.verified) << "secure=" << secure;

        EXPECT_EQ(zc.reply_messages, cp.reply_messages);
        EXPECT_LT(zc_client.data_stats().total_accesses(),
                  cp_client.data_stats().total_accesses())
            << "secure=" << secure;
    }
}

// Layered mode with a zero-copy link still completes and verifies: the TCP
// layer stages a counted copy for it (chains are ILP-only), trading the
// saving for correctness rather than failing.
TEST(ZeroCopyTransfer, LayeredModeFallsBackAndVerifies) {
    app::transfer_config config;
    config.file_bytes = 8 * 1024;
    config.mode = app::path_mode::layered;
    config.zero_copy = true;
    const auto r =
        app::run_transfer_native<crypto::safer_simplified>(config);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verified);
}

// Faults compose with the loan path: corruption on the reply link is still
// detected and recovered, byte-verified at the end.
TEST(ZeroCopyTransfer, FaultsComposeWithLoanDelivery) {
    app::transfer_config config;
    config.file_bytes = 8 * 1024;
    config.zero_copy = true;
    config.forward_faults.corrupt_probability = 0.05;
    config.forward_faults.drop_probability = 0.05;
    config.forward_faults.seed = 77;
    const auto r =
        app::run_transfer_native<crypto::safer_simplified>(config);
    EXPECT_TRUE(r.completed);
    EXPECT_TRUE(r.verified);
    EXPECT_GT(r.reply_tcp_receiver.checksum_failures +
                  r.reply_tcp_sender.retransmissions,
              0u);
}

}  // namespace
}  // namespace ilp
