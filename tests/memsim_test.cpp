// Unit tests for the memory-system simulator: cache model, hierarchy,
// access policies, machine configs and the instruction-footprint model.
#include <gtest/gtest.h>

#include "buffer/byte_buffer.h"
#include "memsim/cache.h"
#include "memsim/code_layout.h"
#include "memsim/configs.h"
#include "memsim/mem_policy.h"
#include "memsim/memory_system.h"

namespace ilp::memsim {
namespace {

cache_config direct_mapped_64(std::size_t line = 16) {
    return {.name = "t",
            .size_bytes = 64,
            .line_bytes = line,
            .associativity = 1,
            .writes = write_policy::write_through,
            .write_misses = write_miss_policy::no_allocate};
}

TEST(Cache, ColdMissThenHit) {
    cache c(direct_mapped_64());
    EXPECT_FALSE(c.access(0, access_kind::read).hit);
    EXPECT_TRUE(c.access(0, access_kind::read).hit);
    EXPECT_TRUE(c.access(15, access_kind::read).hit);   // same line
    EXPECT_FALSE(c.access(16, access_kind::read).hit);  // next line
    EXPECT_EQ(c.misses(), 2u);
    EXPECT_EQ(c.hits(), 2u);
}

TEST(Cache, DirectMappedConflict) {
    // 64-byte cache, 16-byte lines -> 4 sets; addresses 0 and 64 collide.
    cache c(direct_mapped_64());
    c.access(0, access_kind::read);
    c.access(64, access_kind::read);
    EXPECT_FALSE(c.access(0, access_kind::read).hit);  // evicted
    EXPECT_EQ(c.evictions(), 2u);
}

TEST(Cache, SetAssociativeAvoidsConflict) {
    cache_config cfg = direct_mapped_64();
    cfg.size_bytes = 128;
    cfg.associativity = 2;  // 4 sets x 2 ways
    cache c(cfg);
    c.access(0, access_kind::read);
    c.access(64, access_kind::read);  // same set, second way
    EXPECT_TRUE(c.access(0, access_kind::read).hit);
    EXPECT_TRUE(c.access(64, access_kind::read).hit);
}

TEST(Cache, LruReplacement) {
    cache_config cfg = direct_mapped_64();
    cfg.size_bytes = 128;
    cfg.associativity = 2;
    cache c(cfg);
    c.access(0, access_kind::read);    // way A
    c.access(64, access_kind::read);   // way B
    c.access(0, access_kind::read);    // touch A -> B becomes LRU
    c.access(128, access_kind::read);  // evicts B (addr 64)
    EXPECT_TRUE(c.access(0, access_kind::read).hit);
    EXPECT_FALSE(c.access(64, access_kind::read).hit);
}

TEST(Cache, WriteAroundDoesNotFill) {
    cache c(direct_mapped_64());  // write-through, no-allocate
    EXPECT_FALSE(c.access(0, access_kind::write).hit);
    // The write miss did not fill the line, so a read still misses.
    EXPECT_FALSE(c.access(0, access_kind::read).hit);
    EXPECT_EQ(c.write_misses(), 1u);
    EXPECT_EQ(c.read_misses(), 1u);
}

TEST(Cache, WriteBackSetsDirtyAndWritesBackOnEviction) {
    cache_config cfg = direct_mapped_64();
    cfg.writes = write_policy::write_back;
    cfg.write_misses = write_miss_policy::allocate;
    cache c(cfg);
    EXPECT_FALSE(c.access(0, access_kind::write).hit);  // allocate + dirty
    EXPECT_TRUE(c.access(0, access_kind::read).hit);
    const auto r = c.access(64, access_kind::read);  // evicts dirty line
    EXPECT_FALSE(r.hit);
    EXPECT_TRUE(r.writeback);
}

TEST(Cache, FlushInvalidatesEverything) {
    cache c(direct_mapped_64());
    c.access(0, access_kind::read);
    c.flush();
    EXPECT_FALSE(c.access(0, access_kind::read).hit);
}

TEST(MemorySystem, CountsAccessesBySizeBucket) {
    memory_system sys(test_tiny());
    sys.read(0, 1);
    sys.read(0, 2);
    sys.read(0, 4);
    sys.read(0, 8);
    sys.write(0, 4);
    const access_stats& s = sys.data_stats();
    EXPECT_EQ(s.reads.accesses[size_bucket(1)], 1u);
    EXPECT_EQ(s.reads.accesses[size_bucket(2)], 1u);
    EXPECT_EQ(s.reads.accesses[size_bucket(4)], 1u);
    EXPECT_EQ(s.reads.accesses[size_bucket(8)], 1u);
    EXPECT_EQ(s.writes.accesses[size_bucket(4)], 1u);
    EXPECT_EQ(s.total_accesses(), 5u);
    EXPECT_EQ(s.reads.total_bytes(), 15u);
}

TEST(MemorySystem, MissHistogramTracksAccessSize) {
    memory_system sys(test_tiny());
    sys.read(0, 1);  // cold miss, 1-byte bucket
    sys.read(1, 1);  // now hits
    EXPECT_EQ(sys.data_stats().reads.misses[size_bucket(1)], 1u);
    EXPECT_EQ(sys.data_stats().reads.total_misses(), 1u);
}

TEST(MemorySystem, LineCrossingAccessCountsOnce) {
    memory_system sys(test_tiny());  // 16-byte lines
    sys.read(14, 4);                 // spans lines 0 and 1
    EXPECT_EQ(sys.data_stats().reads.accesses[size_bucket(4)], 1u);
    EXPECT_EQ(sys.data_stats().reads.total_misses(), 1u);  // counted once
    EXPECT_EQ(sys.l1d().misses(), 2u);  // but both lines missed in the cache
}

TEST(MemorySystem, L2AbsorbsL1Misses) {
    memory_system with_l2(supersparc_with_l2());
    memory_system without_l2(supersparc_no_l2());
    // Touch a range larger than L1 (16 KB) twice; second pass misses L1 but
    // should hit L2 where present.
    for (int pass = 0; pass < 2; ++pass) {
        for (std::uint64_t a = 0; a < 64 * 1024; a += 32) {
            with_l2.read(a, 4);
            without_l2.read(a, 4);
        }
    }
    EXPECT_GT(with_l2.l1d().misses(), 0u);
    ASSERT_NE(with_l2.l2(), nullptr);
    EXPECT_GT(with_l2.l2()->hits(), 0u);
    // Same L1 behaviour, but the miss penalty differs.
    EXPECT_EQ(with_l2.l1d().misses(), without_l2.l1d().misses());
    EXPECT_LT(with_l2.cycles(), without_l2.cycles());
}

TEST(MemorySystem, ResetColdVsWarm) {
    memory_system sys(test_tiny());
    sys.read(0, 4);
    sys.reset(/*cold_caches=*/false);
    EXPECT_EQ(sys.data_stats().total_accesses(), 0u);
    sys.read(0, 4);  // warm: still cached
    EXPECT_EQ(sys.data_stats().reads.total_misses(), 0u);
    sys.reset(/*cold_caches=*/true);
    sys.read(0, 4);  // cold again
    EXPECT_EQ(sys.data_stats().reads.total_misses(), 1u);
}

TEST(MemorySystem, InstructionFetchPath) {
    memory_system sys(test_tiny());
    sys.instruction_fetch(0x1000, 64);  // 4 lines of 16B
    EXPECT_EQ(sys.instruction_fetch_misses(), 4u);
    sys.instruction_fetch(0x1000, 64);
    EXPECT_EQ(sys.instruction_fetch_misses(), 4u);  // all warm now
    EXPECT_GT(sys.instruction_cycles(), 0u);
}

TEST(MemPolicy, DirectMemoryRoundTrip) {
    direct_memory mem;
    alignas(8) std::byte buf[16] = {};
    mem.store_u8(buf, 0xab);
    EXPECT_EQ(mem.load_u8(buf), 0xab);
    mem.store_u16(buf + 2, 0x1234);
    EXPECT_EQ(mem.load_u16(buf + 2), 0x1234);
    mem.store_u32(buf + 4, 0xdeadbeefu);
    EXPECT_EQ(mem.load_u32(buf + 4), 0xdeadbeefu);
    mem.store_u64(buf + 8, 0x0102030405060708ull);
    EXPECT_EQ(mem.load_u64(buf + 8), 0x0102030405060708ull);
}

TEST(MemPolicy, SimMemoryRecordsAndPerformsAccesses) {
    memory_system sys(test_tiny());
    sim_memory mem(sys);
    byte_buffer buf(64);
    mem.store_u32(buf.data(), 0xcafebabeu);
    EXPECT_EQ(mem.load_u32(buf.data()), 0xcafebabeu);
    EXPECT_EQ(sys.data_stats().writes.accesses[size_bucket(4)], 1u);
    EXPECT_EQ(sys.data_stats().reads.accesses[size_bucket(4)], 1u);
}

TEST(MemPolicy, CopyUsesWordAccesses) {
    memory_system sys(test_tiny());
    sim_memory mem(sys);
    byte_buffer src(14), dst(14);
    mem.copy(dst.data(), src.data(), 14);
    // 14 bytes = one 8-byte + one 4-byte + two single-byte ops, each
    // read+written.
    EXPECT_EQ(sys.data_stats().reads.accesses[size_bucket(8)], 1u);
    EXPECT_EQ(sys.data_stats().reads.accesses[size_bucket(4)], 1u);
    EXPECT_EQ(sys.data_stats().reads.accesses[size_bucket(1)], 2u);
    EXPECT_EQ(sys.data_stats().writes.accesses[size_bucket(8)], 1u);
    EXPECT_EQ(sys.data_stats().writes.accesses[size_bucket(4)], 1u);
    EXPECT_EQ(sys.data_stats().writes.accesses[size_bucket(1)], 2u);
}

TEST(Configs, KnownMachinesResolve) {
    for (const auto name : known_machines()) {
        const memory_system_config cfg = config_for_machine(name);
        EXPECT_GT(cfg.l1d.size_bytes, 0u) << name;
        EXPECT_GT(cfg.l1i.size_bytes, 0u) << name;
    }
}

TEST(Configs, Ss1030HasNoL2ButOthersDo) {
    EXPECT_FALSE(config_for_machine("ss10-30").l2.has_value());
    EXPECT_TRUE(config_for_machine("ss10-41").l2.has_value());
    EXPECT_TRUE(config_for_machine("axp3000-800").l2.has_value());
}

TEST(Configs, AlphaHasSmallDirectMappedCaches) {
    const auto cfg = config_for_machine("axp3000-500");
    EXPECT_EQ(cfg.l1i.size_bytes, 8u * 1024);
    EXPECT_EQ(cfg.l1d.size_bytes, 8u * 1024);
    EXPECT_EQ(cfg.l1i.associativity, 1u);
}

TEST(CodeLayout, AssignsDisjointRegions) {
    code_layout layout;
    const code_region& f = layout.add("marshal", 128, 256);
    const code_region& g = layout.add("encrypt", 64, 512);
    EXPECT_GE(g.entry_base, f.loop_base + f.loop_bytes);
    EXPECT_EQ(layout.footprint(), 128u + 256 + 64 + 512);
    EXPECT_NE(layout.find("marshal"), nullptr);
    EXPECT_EQ(layout.find("absent"), nullptr);
}

TEST(CodeLayout, FusedLoopThrashesSmallIcacheMoreThanSeparateLoops) {
    // The Alpha effect (§4.2): alternating per-unit between several loop
    // bodies whose combined footprint exceeds the I-cache misses more than
    // running each loop to completion over the message.
    code_layout layout;
    // Three stages, 3.5 KB of loop code each: combined ~10.5 KB > 8 KB L1I.
    const code_region& s1 = layout.add("stage1", 0, 3584);
    const code_region& s2 = layout.add("stage2", 0, 3584);
    const code_region& s3 = layout.add("stage3", 0, 3584);

    const auto run_fused = [&](memory_system& sys, int units) {
        for (int u = 0; u < units; ++u) {
            fetch_loop_iteration(sys, s1);
            fetch_loop_iteration(sys, s2);
            fetch_loop_iteration(sys, s3);
        }
    };
    const auto run_layered = [&](memory_system& sys, int units) {
        for (int u = 0; u < units; ++u) fetch_loop_iteration(sys, s1);
        for (int u = 0; u < units; ++u) fetch_loop_iteration(sys, s2);
        for (int u = 0; u < units; ++u) fetch_loop_iteration(sys, s3);
    };

    memory_system fused(alpha21064(512 * 1024));
    memory_system layered(alpha21064(512 * 1024));
    run_fused(fused, 128);
    run_layered(layered, 128);
    EXPECT_GT(fused.instruction_fetch_misses(),
              layered.instruction_fetch_misses() * 10);

    // On the SuperSPARC's 20 KB I-cache everything fits: no difference.
    memory_system fused_sparc(supersparc_with_l2());
    memory_system layered_sparc(supersparc_with_l2());
    run_fused(fused_sparc, 128);
    run_layered(layered_sparc, 128);
    EXPECT_EQ(fused_sparc.instruction_fetch_misses(),
              layered_sparc.instruction_fetch_misses());
}

}  // namespace
}  // namespace ilp::memsim
