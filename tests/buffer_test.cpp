// Unit tests for byte_buffer and the TCP retransmission ring buffer.
#include <gtest/gtest.h>

#include <cstring>
#include <deque>
#include <numeric>

#include "buffer/byte_buffer.h"
#include "buffer/ring_buffer.h"

namespace ilp {
namespace {

std::vector<std::byte> pattern(std::size_t n, unsigned seed = 0) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) {
        v[i] = static_cast<std::byte>((seed + i * 37) & 0xff);
    }
    return v;
}

std::vector<std::byte> read_all(const ring_buffer& ring, std::size_t offset,
                                std::size_t n) {
    std::vector<std::byte> out(n);
    ring.copy_out(offset, out);
    return out;
}

TEST(ByteBuffer, AllocatesAlignedZeroedStorage) {
    byte_buffer buf(100);
    EXPECT_EQ(buf.size(), 100u);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % 8, 0u);
    for (const std::byte b : buf.span()) EXPECT_EQ(b, std::byte{0});
}

TEST(ByteBuffer, EmptyBuffer) {
    byte_buffer buf;
    EXPECT_TRUE(buf.empty());
    EXPECT_EQ(buf.size(), 0u);
}

TEST(RingBuffer, PushPeekRelease) {
    ring_buffer ring(64);
    const auto data = pattern(20);
    ring.push(data);
    EXPECT_EQ(ring.size(), 20u);
    EXPECT_EQ(read_all(ring, 0, 20), data);
    ring.release(5);
    EXPECT_EQ(ring.size(), 15u);
    EXPECT_EQ(read_all(ring, 0, 15),
              std::vector<std::byte>(data.begin() + 5, data.end()));
}

TEST(RingBuffer, ReserveCommitContiguous) {
    ring_buffer ring(64);
    const ring_span span = ring.reserve(16);
    EXPECT_EQ(span.first.size(), 16u);
    EXPECT_TRUE(span.second.empty());
    std::memset(span.first.data(), 0xab, 16);
    ring.commit(16);
    EXPECT_EQ(ring.size(), 16u);
    const auto out = read_all(ring, 0, 16);
    for (const std::byte b : out) EXPECT_EQ(b, std::byte{0xab});
}

TEST(RingBuffer, ReservationWrapsAroundEnd) {
    ring_buffer ring(32);
    ring.push(pattern(24));
    ring.release(20);  // front = 20, size = 4, write index = 24
    const ring_span span = ring.reserve(16);
    EXPECT_EQ(span.first.size(), 8u);   // bytes 24..31
    EXPECT_EQ(span.second.size(), 8u);  // bytes 0..7
    const auto data = pattern(16, 100);
    std::memcpy(span.first.data(), data.data(), 8);
    std::memcpy(span.second.data(), data.data() + 8, 8);
    ring.commit(16);
    EXPECT_EQ(read_all(ring, 4, 16), data);
}

TEST(RingBuffer, PeekWrapsAroundEnd) {
    ring_buffer ring(32);
    ring.push(pattern(30));
    ring.release(28);
    ring.push(pattern(10, 50));  // wraps
    const const_ring_span view = ring.peek(2, 10);
    ASSERT_EQ(view.size(), 10u);
    std::vector<std::byte> collected;
    collected.insert(collected.end(), view.first.begin(), view.first.end());
    collected.insert(collected.end(), view.second.begin(), view.second.end());
    EXPECT_EQ(collected, pattern(10, 50));
}

TEST(RingBuffer, FillToCapacityExactly) {
    ring_buffer ring(16);
    ring.push(pattern(16));
    EXPECT_EQ(ring.free_space(), 0u);
    ring.release(16);
    EXPECT_TRUE(ring.empty());
    ring.push(pattern(16, 5));  // reusable after full drain
    EXPECT_EQ(read_all(ring, 0, 16), pattern(16, 5));
}

TEST(RingBuffer, ManyWrapCyclesPreserveData) {
    // Property test: under an adversarial push/release schedule the ring
    // must behave exactly like a FIFO of bytes (mirror kept in a deque).
    ring_buffer ring(48);
    std::deque<std::byte> mirror;
    std::size_t produced = 0;
    std::size_t consumed = 0;
    while (produced < 10'000) {
        const std::size_t chunk = 1 + produced % 17;
        if (ring.free_space() >= chunk) {
            const auto data = pattern(chunk, static_cast<unsigned>(produced));
            ring.push(data);
            mirror.insert(mirror.end(), data.begin(), data.end());
            produced += chunk;
        }
        const std::size_t take = 1 + consumed % 13;
        if (ring.size() >= take) {
            const auto head = read_all(ring, 0, take);
            const std::vector<std::byte> expected(mirror.begin(),
                                                  mirror.begin() + take);
            ASSERT_EQ(head, expected) << "at consumed=" << consumed;
            ring.release(take);
            mirror.erase(mirror.begin(), mirror.begin() + take);
            consumed += take;
        }
    }
    EXPECT_EQ(ring.size(), mirror.size());
}

std::vector<std::byte> collect(const const_ring_span& v) {
    std::vector<std::byte> out;
    out.insert(out.end(), v.first.begin(), v.first.end());
    out.insert(out.end(), v.second.begin(), v.second.end());
    return out;
}

TEST(ConstRingSpan, SubspanWithinFirstPiece) {
    ring_buffer ring(32);
    ring.push(pattern(30));
    ring.release(28);
    ring.push(pattern(12, 50));  // wraps: first piece 4 bytes, second 8
    const const_ring_span view = ring.peek(2, 12);
    ASSERT_FALSE(view.second.empty());
    const std::size_t split = view.first.size();

    const const_ring_span head = view.subspan(0, split);
    EXPECT_TRUE(head.second.empty());
    const auto whole = pattern(12, 50);
    EXPECT_EQ(collect(head),
              std::vector<std::byte>(whole.begin(), whole.begin() + split));
}

TEST(ConstRingSpan, SubspanStraddlingTheWrap) {
    ring_buffer ring(32);
    ring.push(pattern(30));
    ring.release(28);
    ring.push(pattern(12, 50));
    const const_ring_span view = ring.peek(2, 12);
    const std::size_t split = view.first.size();
    ASSERT_GT(split, 0u);
    ASSERT_LT(split, 12u);

    // A cut starting before the wrap and ending after it keeps both pieces.
    const const_ring_span mid = view.subspan(split - 1, 4);
    EXPECT_EQ(mid.first.size(), 1u);
    EXPECT_EQ(mid.second.size(), 3u);
    const auto whole = pattern(12, 50);
    EXPECT_EQ(collect(mid),
              std::vector<std::byte>(whole.begin() + split - 1,
                                     whole.begin() + split + 3));
}

TEST(ConstRingSpan, SubspanEntirelyInSecondPiece) {
    ring_buffer ring(32);
    ring.push(pattern(30));
    ring.release(28);
    ring.push(pattern(12, 50));
    const const_ring_span view = ring.peek(2, 12);
    const std::size_t split = view.first.size();

    const const_ring_span tail = view.subspan(split + 2, 12 - split - 2);
    EXPECT_TRUE(tail.second.empty());  // single piece again
    const auto whole = pattern(12, 50);
    EXPECT_EQ(collect(tail),
              std::vector<std::byte>(whole.begin() + split + 2, whole.end()));
}

TEST(ConstRingSpan, SubspanExhaustiveOffsets) {
    ring_buffer ring(32);
    ring.push(pattern(30));
    ring.release(28);
    ring.push(pattern(16, 7));
    const const_ring_span view = ring.peek(2, 16);
    const auto whole = pattern(16, 7);
    for (std::size_t off = 0; off <= 16; ++off) {
        for (std::size_t len = 0; len + off <= 16; ++len) {
            const const_ring_span cut = view.subspan(off, len);
            EXPECT_EQ(cut.size(), len);
            EXPECT_EQ(collect(cut),
                      std::vector<std::byte>(whole.begin() + off,
                                             whole.begin() + off + len))
                << "off=" << off << " len=" << len;
        }
    }
}

TEST(RingBuffer, WriteIndexTracksContent) {
    ring_buffer ring(32);
    EXPECT_EQ(ring.write_index(), 0u);
    ring.push(pattern(10));
    EXPECT_EQ(ring.write_index(), 10u);
    ring.release(4);
    EXPECT_EQ(ring.write_index(), 10u);  // release moves front, not back
    ring.push(pattern(22));
    EXPECT_EQ(ring.write_index(), 0u);  // wrapped exactly to 0
}

}  // namespace
}  // namespace ilp
