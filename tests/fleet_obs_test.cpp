// Tests for the fleet-observability layer: deterministic trace sampling
// (obs/sampler.h wired through the tracer ring), the per-flow flight
// recorder and its dump-on-explicit-failure-only contract in the fleet
// JSON export, and the log2-bucket latency sketch's p99 agreement with the
// exact distribution.
#include <gtest/gtest.h>

#include <algorithm>
#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "crypto/safer_simplified.h"
#include "engine/fleet.h"
#include "obs/flight_recorder.h"
#include "obs/registry.h"
#include "obs/sampler.h"
#include "obs/tracer.h"
#include "util/json.h"
#include "util/rng.h"

namespace ilp {
namespace {

using cipher = crypto::safer_simplified;

// --- flow sampler ----------------------------------------------------------

TEST(FlowSampler, RateZeroSelectsNothingRateFullSelectsEverything) {
    const obs::flow_sampler none{.seed = 7, .rate_permyriad = 0};
    const obs::flow_sampler all{.seed = 7, .rate_permyriad = 10'000};
    for (std::int64_t f = 0; f < 1000; ++f) {
        EXPECT_FALSE(none.sampled(f));
        EXPECT_TRUE(all.sampled(f));
    }
}

TEST(FlowSampler, SelectionIsAPureFunctionOfSeedAndFlow) {
    const obs::flow_sampler a{.seed = 42, .rate_permyriad = 2'500};
    const obs::flow_sampler b{.seed = 42, .rate_permyriad = 2'500};
    const obs::flow_sampler other_seed{.seed = 43, .rate_permyriad = 2'500};
    std::uint32_t selected = 0;
    bool seeds_differ = false;
    for (std::int64_t f = 0; f < 4000; ++f) {
        EXPECT_EQ(a.sampled(f), b.sampled(f));
        if (a.sampled(f)) ++selected;
        seeds_differ |= a.sampled(f) != other_seed.sampled(f);
    }
    // ~25% of 4000 with splitmix-quality mixing; a loose band suffices.
    EXPECT_GT(selected, 700u);
    EXPECT_LT(selected, 1300u);
    EXPECT_TRUE(seeds_differ);
}

TEST(FlowSampler, NonFlowScopedSpansAreAlwaysSampled) {
    const obs::flow_sampler none{.seed = 7, .rate_permyriad = 0};
    EXPECT_TRUE(none.sampled(-1));  // flow -1 = not flow-scoped
}

// --- tracer ring vs. aggregates under sampling -----------------------------

TEST(TracerSampling, RingSkipsUnsampledFlowsButAggregatesKeepThem) {
    obs::tracer t(64);
    // Select nothing: every flow-scoped span is withheld from the ring.
    t.set_sampler({.seed = 1, .rate_permyriad = 0});
    obs::tracer* prev = obs::tracer::install(&t);
    for (std::int64_t f = 0; f < 5; ++f) {
        obs::scoped_flow scope(f);
        t.open("test", "stage");
        t.close();
    }
    obs::tracer::install(prev);

    EXPECT_EQ(t.events().size(), 0u);
    EXPECT_EQ(t.recorded(), 0u);
    EXPECT_EQ(t.sampled_out(), 5u);
    EXPECT_EQ(t.dropped(), 0u);  // sampling is policy, not data loss
    // The per-stage aggregates never drop: all five spans are counted.
    const auto& stages = t.stages();
    ASSERT_EQ(stages.size(), 1u);
    EXPECT_EQ(stages.begin()->second.count, 5u);
}

TEST(TracerSampling, DefaultSamplerKeepsEverything) {
    obs::tracer t(64);
    obs::tracer* prev = obs::tracer::install(&t);
    for (std::int64_t f = 0; f < 5; ++f) {
        obs::scoped_flow scope(f);
        t.open("test", "stage");
        t.close();
    }
    t.open("test", "unscoped");  // flow -1: always kept
    t.close();
    obs::tracer::install(prev);
    EXPECT_EQ(t.events().size(), 6u);
    EXPECT_EQ(t.sampled_out(), 0u);
}

TEST(TracerSampling, SampledOutDistinctFromRingDrops) {
    obs::tracer t(2);  // tiny ring: kept events overwrite each other
    t.set_sampler({.seed = 9, .rate_permyriad = 10'000});
    obs::tracer* prev = obs::tracer::install(&t);
    for (std::int64_t f = 0; f < 6; ++f) {
        obs::scoped_flow scope(f);
        t.open("test", "stage");
        t.close();
    }
    obs::tracer::install(prev);
    EXPECT_EQ(t.sampled_out(), 0u);
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.dropped(), 4u);  // 6 accepted, ring holds 2
}

// --- flight recorder -------------------------------------------------------

TEST(FlightRecorder, KeepsTheLastCapacityEntriesOldestFirst) {
    obs::flight_recorder fr;
    const std::size_t n = obs::flight_recorder::capacity + 5;
    for (std::size_t i = 0; i < n; ++i) {
        fr.record(static_cast<sim_time>(i * 10), obs::flight_event::segment,
                  static_cast<std::uint32_t>(i));
    }
    EXPECT_EQ(fr.recorded(), n);
    EXPECT_EQ(fr.size(), obs::flight_recorder::capacity);
    const std::vector<obs::flight_entry> entries = fr.entries();
    ASSERT_EQ(entries.size(), obs::flight_recorder::capacity);
    // The 5 oldest entries were overwritten; the survivors are in order.
    for (std::size_t i = 0; i < entries.size(); ++i) {
        EXPECT_EQ(entries[i].arg, static_cast<std::uint32_t>(i + 5));
        EXPECT_EQ(entries[i].at_us, static_cast<sim_time>((i + 5) * 10));
        EXPECT_EQ(entries[i].event, obs::flight_event::segment);
    }
}

TEST(FlightRecorder, EventNamesAreStable) {
    EXPECT_STREQ(obs::flight_event_name(obs::flight_event::connect),
                 "connect");
    EXPECT_STREQ(obs::flight_event_name(obs::flight_event::retransmit),
                 "retransmit");
    EXPECT_STREQ(obs::flight_event_name(obs::flight_event::gave_up),
                 "gave_up");
    EXPECT_STREQ(obs::flight_event_name(obs::flight_event::composed_fallback),
                 "composed_fallback");
}

// --- fleet JSON black boxes ------------------------------------------------

engine::fleet_config mixed_fleet() {
    engine::fleet_config cfg;
    cfg.flows = 8;
    cfg.shards = 2;
    cfg.policy = engine::sched_policy::deficit_round_robin;
    cfg.defaults.file_bytes = 4 * 1024;
    cfg.defaults.packet_wire_bytes = 1024;
    cfg.trace_sampler.seed = 0xfeed;
    cfg.trace_sampler.rate_permyriad = 5'000;
    cfg.per_flow = [](std::uint32_t f, engine::flow_config& fc) {
        if (f == 3) {  // total reply loss + no retry budget -> gave_up
            fc.forward_faults.drop_probability = 1.0;
            fc.retry.max_attempts = 1;
            fc.retry.response_timeout_us = 2'000;
        }
        if (f == 5) {  // illegal tap -> legality-gate demotion, completes
            fc.tap = app::compose_tap::crc32;
        }
    };
    return cfg;
}

TEST(FleetReportJson, BlackBoxesDumpOnlyFailedOrDemotedFlows) {
    const engine::fleet_report r =
        engine::run_fleet_native<cipher>(mixed_fleet());
    EXPECT_EQ(r.completed, 7u);
    EXPECT_EQ(r.failed, 1u);

    const std::optional<json::value> doc =
        json::parse(engine::fleet_report_json(r));
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string_at("kind"), "fleet_report");
    EXPECT_EQ(doc->number_at("flows"), 8.0);
    EXPECT_EQ(doc->number_at("completed"), 7.0);

    const json::value* sampling = doc->find("sampling");
    ASSERT_NE(sampling, nullptr);
    EXPECT_EQ(sampling->number_at("rate_permyriad"), 5'000.0);
    EXPECT_EQ(sampling->number_at("sampled_flows"),
              static_cast<double>(r.trace_sampled));

    const json::value* shards = doc->find("shards");
    ASSERT_NE(shards, nullptr);
    ASSERT_NE(shards->as_array(), nullptr);
    EXPECT_EQ(shards->as_array()->size(), 2u);

    const json::value* boxes_v = doc->find("black_boxes");
    ASSERT_NE(boxes_v, nullptr);
    const json::array* boxes = boxes_v->as_array();
    ASSERT_NE(boxes, nullptr);
    // Exactly the gave_up flow and the demoted flow — completed healthy
    // flows never dump their recorders.
    ASSERT_EQ(boxes->size(), 2u);
    const json::value& failed = (*boxes)[0];
    EXPECT_EQ(failed.number_at("flow"), 3.0);
    EXPECT_EQ(failed.string_at("outcome"), "gave_up");
    const json::value* failed_events = failed.find("events");
    ASSERT_NE(failed_events, nullptr);
    ASSERT_NE(failed_events->as_array(), nullptr);
    EXPECT_GT(failed_events->as_array()->size(), 0u);
    // The terminal transition is the last ring entry.
    const json::array& ev = *failed_events->as_array();
    EXPECT_EQ(ev[ev.size() - 1].string_at("ev"), "gave_up");

    const json::value& demoted = (*boxes)[1];
    EXPECT_EQ(demoted.number_at("flow"), 5.0);
    EXPECT_EQ(demoted.string_at("outcome"), "completed");
    const json::value* fb = demoted.find("composed_fallback");
    ASSERT_NE(fb, nullptr);
    EXPECT_TRUE(fb->as_bool());
}

TEST(FleetReportJson, MetricsSurfaceSamplingAndLatencySketch) {
    const engine::fleet_report r =
        engine::run_fleet_native<cipher>(mixed_fleet());
    EXPECT_EQ(r.metrics.counter("obs.trace.sampled_flows"), r.trace_sampled);
    EXPECT_GT(r.metrics.gauge("fleet.flow_latency.p99"), 0.0);
    const obs::histogram* sketch = r.metrics.find_hist("fleet.flow_latency_us");
    ASSERT_NE(sketch, nullptr);
    EXPECT_EQ(sketch->count(), r.flows.size());
    // The fleet sketch is exactly the per-shard sketches merged.
    std::uint64_t shard_total = 0;
    for (const engine::shard_summary& s : r.shards) {
        shard_total += s.latency.count();
    }
    EXPECT_EQ(shard_total, sketch->count());
}

// --- latency sketch fidelity -----------------------------------------------

// The log2-bucket sketch interpolates percentiles inside the bucket that
// holds the true quantile, so its p99 is within that bucket's bounds —
// never off by more than the bucket width (a factor of 2).
TEST(LatencySketch, P99AgreesWithExactDistributionWithinOneBucket) {
    obs::histogram sketch;
    std::vector<std::uint64_t> exact;
    rng r(0x5ca1e);
    for (int i = 0; i < 20'000; ++i) {
        // Heavy-tailed-ish: mostly small, occasional large.
        const std::uint64_t v = (r.next_u64() % 1000) + 1;
        const std::uint64_t value = (i % 100 == 0) ? v * 500 : v;
        sketch.record(value);
        exact.push_back(value);
    }
    std::sort(exact.begin(), exact.end());
    const std::uint64_t true_p99 =
        exact[static_cast<std::size_t>(0.99 * (exact.size() - 1))];
    const double est = sketch.percentile(99.0);
    EXPECT_GE(est * 2.0, static_cast<double>(true_p99));
    EXPECT_LE(est, static_cast<double>(true_p99) * 2.0);
}

}  // namespace
}  // namespace ilp
