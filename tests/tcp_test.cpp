// Tests for the user-level TCP: header codec, checksum composition, and the
// sender/receiver engine end-to-end over the datagram substrate — including
// loss, corruption, duplication, reordering, window blocking and RTO
// retransmission.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "checksum/internet_checksum.h"
#include "memsim/configs.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "tcp/connection.h"
#include "tcp/header.h"
#include "util/rng.h"

namespace ilp::tcp {
namespace {

using memsim::direct_memory;

TEST(TcpHeader, SerializeParseRoundTrip) {
    header_fields in;
    in.src_port = 5001;
    in.dst_port = 5002;
    in.seq = 0xdeadbeef;
    in.ack = 0x01020304;
    in.control = flags::ack | flags::psh;
    in.window = 8192;
    in.checksum = 0xabcd;
    in.urgent = 7;
    std::byte wire[header_bytes];
    serialize_header(in, wire);
    header_fields out;
    ASSERT_TRUE(parse_header(wire, out));
    EXPECT_EQ(out.src_port, in.src_port);
    EXPECT_EQ(out.dst_port, in.dst_port);
    EXPECT_EQ(out.seq, in.seq);
    EXPECT_EQ(out.ack, in.ack);
    EXPECT_EQ(out.control, in.control);
    EXPECT_EQ(out.window, in.window);
    EXPECT_EQ(out.checksum, in.checksum);
    EXPECT_EQ(out.urgent, in.urgent);
}

TEST(TcpHeader, ParseRejectsOptions) {
    std::byte wire[header_bytes] = {};
    wire[12] = std::byte{6 << 4};  // data offset 6 => options present
    header_fields out;
    EXPECT_FALSE(parse_header(wire, out));
}

TEST(TcpHeader, ParseRejectsShortInput) {
    std::byte wire[10] = {};
    header_fields out;
    EXPECT_FALSE(parse_header({wire, 10}, out));
}

TEST(TcpChecksum, SplitPayloadSumMatchesMonolithicSum) {
    // The composition property the ILP path relies on: the payload sum can
    // be folded separately (by the loop's tap) and combined with the
    // pseudo-header and header sums later.
    rng r(1);
    std::vector<std::byte> payload(333);
    r.fill(payload);

    header_fields h;
    h.src_port = 1;
    h.dst_port = 2;
    h.seq = 99;
    h.control = flags::psh;
    std::byte header[header_bytes];
    serialize_header(h, header);

    checksum::inet_accumulator payload_acc;
    payload_acc.add_bytes(direct_memory{}, payload, 2);
    const std::uint16_t cksum = finish_segment_checksum(
        0x0a000001, 0x0a000002, header, payload_acc.folded(), payload.size());

    // Monolithic verification: fold everything in one accumulator.
    checksum::inet_accumulator all;
    accumulate_pseudo_header(
        all, 0x0a000001, 0x0a000002,
        static_cast<std::uint16_t>(header_bytes + payload.size()));
    store_be16(header + 16, cksum);
    all.add_bytes(direct_memory{}, {header, header_bytes}, 2);
    all.add_bytes(direct_memory{}, payload, 2);
    EXPECT_EQ(all.folded(), 0xffff);

    // And via the library's verifier.
    EXPECT_TRUE(verify_segment_checksum(0x0a000001, 0x0a000002,
                                        {header, header_bytes},
                                        payload_acc.folded(), payload.size()));
    // A corrupted payload fails.
    payload[5] ^= std::byte{0x40};
    checksum::inet_accumulator bad_acc;
    bad_acc.add_bytes(direct_memory{}, payload, 2);
    EXPECT_FALSE(verify_segment_checksum(0x0a000001, 0x0a000002,
                                         {header, header_bytes},
                                         bad_acc.folded(), payload.size()));
}

TEST(TcpSeq, WraparoundComparisons) {
    EXPECT_TRUE(seq_lt(0xfffffff0u, 0x00000010u));
    EXPECT_FALSE(seq_lt(0x00000010u, 0xfffffff0u));
    EXPECT_TRUE(seq_leq(5, 5));
    EXPECT_TRUE(seq_lt(5, 6));
}

// ---------------------------------------------------------------------------
// End-to-end harness

// A minimal application data path for TCP-level tests: the filler copies a
// staged message into the ring; the processor checksums the payload and
// stores a copy.  (The real marshalling/encryption paths live in ilp_app and
// are tested in app_test.cpp.)
class harness {
public:
    explicit harness(net::fault_config forward_faults = {},
                     connection_config cfg = {})
        : link_(clock_, /*latency_us=*/100, forward_faults),
          sender_(direct_memory{}, clock_, link_.forward(), cfg),
          receiver_(direct_memory{}, clock_, link_.reverse(), mirrored(cfg)) {
        link_.forward().set_receiver(
            [this](std::span<const std::byte> p) { receiver_.on_packet(p); });
        link_.reverse().set_receiver(
            [this](std::span<const std::byte> p) { sender_.on_ack_packet(p); });
        receiver_.set_processor([this](std::span<const std::byte> payload) {
            checksum::inet_accumulator acc;
            acc.add_bytes(direct_memory{}, payload, 2);
            pending_.assign(payload.begin(), payload.end());
            return rx_process_result{acc.folded(), true};
        });
        receiver_.set_accept_handler([this](std::size_t) {
            delivered_.push_back(pending_);
        });
    }

    // Sends `message`, retrying (advancing time) while the window is full.
    void send(const std::vector<std::byte>& message) {
        const auto fill = [&](const ring_span& dst) {
            std::memcpy(dst.first.data(), message.data(), dst.first.size());
            if (!dst.second.empty()) {
                std::memcpy(dst.second.data(),
                            message.data() + dst.first.size(),
                            dst.second.size());
            }
            return std::optional<std::uint16_t>();  // non-ILP: tcp computes
        };
        while (!sender_.send_message(message.size(), fill)) {
            ASSERT_FALSE(sender_.failed());
            clock_.advance(1000);
        }
    }

    void run_until_idle(sim_time max_us = 60'000'000) {
        const sim_time deadline = clock_.now() + max_us;
        while (!sender_.idle() && !sender_.failed() &&
               clock_.now() < deadline) {
            clock_.advance(1000);
        }
    }

    virtual_clock clock_;
    net::duplex_link link_;
    tcp_sender<direct_memory> sender_;
    tcp_receiver<direct_memory> receiver_;
    std::vector<std::byte> pending_;
    std::vector<std::vector<std::byte>> delivered_;
};

std::vector<std::byte> message(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng r(seed);
    r.fill(v);
    return v;
}

TEST(TcpEndToEnd, SingleMessage) {
    harness h;
    const auto msg = message(512, 1);
    h.send(msg);
    h.run_until_idle();
    EXPECT_TRUE(h.sender_.idle());
    ASSERT_EQ(h.delivered_.size(), 1u);
    EXPECT_EQ(h.delivered_[0], msg);
    EXPECT_EQ(h.receiver_.stats().messages_accepted, 1u);
    EXPECT_EQ(h.sender_.stats().retransmissions, 0u);
}

TEST(TcpEndToEnd, ManyMessagesPreserveBoundariesAndOrder) {
    harness h;
    std::vector<std::vector<std::byte>> sent;
    for (int i = 0; i < 50; ++i) {
        sent.push_back(message(64 + 32 * (i % 7), 100 + i));
        h.send(sent.back());
    }
    h.run_until_idle();
    EXPECT_TRUE(h.sender_.idle());
    ASSERT_EQ(h.delivered_.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(h.delivered_[i], sent[i]) << "message " << i;
    }
}

TEST(TcpEndToEnd, WindowBlocksWhenBufferFull) {
    connection_config cfg;
    cfg.send_buffer_bytes = 2048;
    cfg.recv_window_bytes = 2048;
    harness h({}, cfg);
    for (int i = 0; i < 8; ++i) h.send(message(1024, 200 + i));
    h.run_until_idle();
    ASSERT_EQ(h.delivered_.size(), 8u);
    // With a 2 KB window and 1 KB messages, sends must have blocked at least
    // once while ACKs were in flight.
    EXPECT_GT(h.sender_.stats().send_blocked, 0u);
}

TEST(TcpEndToEnd, RecoversFromLoss) {
    net::fault_config faults;
    faults.drop_probability = 0.2;
    faults.seed = 42;
    harness h(faults);
    std::vector<std::vector<std::byte>> sent;
    for (int i = 0; i < 30; ++i) {
        sent.push_back(message(256, 300 + i));
        h.send(sent.back());
    }
    h.run_until_idle();
    EXPECT_TRUE(h.sender_.idle());
    EXPECT_GT(h.sender_.stats().retransmissions, 0u);
    ASSERT_EQ(h.delivered_.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(h.delivered_[i], sent[i]);
    }
}

TEST(TcpEndToEnd, DetectsCorruptionByChecksum) {
    net::fault_config faults;
    faults.corrupt_probability = 0.3;
    faults.seed = 7;
    harness h(faults);
    std::vector<std::vector<std::byte>> sent;
    for (int i = 0; i < 20; ++i) {
        sent.push_back(message(256, 400 + i));
        h.send(sent.back());
    }
    h.run_until_idle();
    EXPECT_TRUE(h.sender_.idle());
    EXPECT_GT(h.receiver_.stats().checksum_failures, 0u);
    // Every message still arrives intact via retransmission.
    ASSERT_EQ(h.delivered_.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(h.delivered_[i], sent[i]);
    }
}

TEST(TcpEndToEnd, SurvivesDuplicationAndReordering) {
    net::fault_config faults;
    faults.duplicate_probability = 0.2;
    faults.reorder_probability = 0.2;
    faults.seed = 11;
    harness h(faults);
    std::vector<std::vector<std::byte>> sent;
    for (int i = 0; i < 30; ++i) {
        sent.push_back(message(200, 500 + i));
        h.send(sent.back());
    }
    h.run_until_idle();
    EXPECT_TRUE(h.sender_.idle());
    const auto& rs = h.receiver_.stats();
    EXPECT_GT(rs.duplicate_drops + rs.out_of_order_drops, 0u);
    ASSERT_EQ(h.delivered_.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(h.delivered_[i], sent[i]);
    }
}

TEST(TcpEndToEnd, FailsAfterMaxRetriesOnDeadLink) {
    net::fault_config faults;
    faults.drop_probability = 1.0;
    connection_config cfg;
    cfg.rto_us = 1000;
    cfg.max_retries = 3;
    harness h(faults, cfg);
    h.send(message(100, 600));
    h.run_until_idle(1'000'000);
    EXPECT_TRUE(h.sender_.failed());
    EXPECT_EQ(h.sender_.stats().retransmissions, 3u);
    EXPECT_TRUE(h.delivered_.empty());
}

TEST(TcpEndToEnd, IlpFillerChecksumIsUsed) {
    // When the filler supplies the payload sum (the ILP path), tcp must not
    // run its own checksum pass — and the wire checksum must still verify.
    harness h;
    const auto msg = message(512, 700);
    const auto fill = [&](const ring_span& dst) {
        checksum::inet_accumulator acc;
        std::memcpy(dst.first.data(), msg.data(), dst.first.size());
        if (!dst.second.empty()) {
            std::memcpy(dst.second.data(), msg.data() + dst.first.size(),
                        dst.second.size());
        }
        acc.add_bytes(direct_memory{}, msg, 2);
        return std::optional<std::uint16_t>(acc.folded());
    };
    ASSERT_TRUE(h.sender_.send_message(msg.size(), fill));
    h.run_until_idle();
    ASSERT_EQ(h.delivered_.size(), 1u);
    EXPECT_EQ(h.delivered_[0], msg);
    EXPECT_EQ(h.receiver_.stats().checksum_failures, 0u);
}

TEST(TcpEndToEnd, AcksCrossTheDomainBoundary) {
    // The paper's §4.1 point about user-level TCP: acknowledgements cross
    // the user/kernel boundary on both sides.
    harness h;
    h.send(message(256, 800));
    h.run_until_idle();
    EXPECT_GT(h.link_.reverse().stats().send_crossings, 0u);
    EXPECT_GT(h.link_.reverse().stats().deliver_crossings, 0u);
}

}  // namespace
}  // namespace ilp::tcp
