// Tests for adaptive retransmission timing: Jacobson smoothing, Karn's
// rule, exponential backoff, and end-to-end behaviour under loss.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "checksum/internet_checksum.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "tcp/connection.h"
#include "util/rng.h"

namespace ilp::tcp {
namespace {

using memsim::direct_memory;

struct harness {
    virtual_clock clock;
    net::duplex_link link;
    tcp_sender<direct_memory> sender;
    tcp_receiver<direct_memory> receiver;
    int delivered = 0;

    harness(connection_config cfg, net::fault_config faults = {},
            sim_time latency = 1000)
        : link(clock, latency, faults),
          sender(direct_memory{}, clock, link.forward(), cfg),
          receiver(direct_memory{}, clock, link.reverse(), mirrored(cfg)) {
        link.forward().set_receiver(
            [this](std::span<const std::byte> p) { receiver.on_packet(p); });
        link.reverse().set_receiver(
            [this](std::span<const std::byte> p) { sender.on_ack_packet(p); });
        receiver.set_processor([](std::span<std::byte> payload) {
            checksum::inet_accumulator acc;
            acc.add_bytes(direct_memory{}, payload, 2);
            return rx_process_result{acc.folded(), true};
        });
        receiver.set_accept_handler([this](std::size_t) { ++delivered; });
    }

    bool send(std::size_t n, std::uint64_t seed) {
        std::vector<std::byte> msg(n);
        rng r(seed);
        r.fill(msg);
        return sender.send_message(n, [&](const ring_span& dst) {
            std::memcpy(dst.first.data(), msg.data(), dst.first.size());
            if (!dst.second.empty()) {
                std::memcpy(dst.second.data(), msg.data() + dst.first.size(),
                            dst.second.size());
            }
            return std::optional<std::uint16_t>();
        });
    }
};

TEST(AdaptiveRto, ConvergesToPathRtt) {
    connection_config cfg;
    cfg.adaptive_rto = true;
    harness h(cfg, {}, /*latency=*/1000);  // RTT = 2 ms
    for (int i = 0; i < 30; ++i) {
        ASSERT_TRUE(h.send(128, i));
        h.clock.advance(5000);  // let the ACK return
    }
    EXPECT_EQ(h.delivered, 30);
    // SRTT should sit near the 2 ms round trip.
    EXPECT_GT(h.sender.smoothed_rtt_us(), 1000);
    EXPECT_LT(h.sender.smoothed_rtt_us(), 4000);
    // The effective RTO is SRTT + 4*RTTVAR — far below the 200 ms default.
    EXPECT_LT(h.sender.effective_rto_us(), 50'000u);
    EXPECT_GE(h.sender.effective_rto_us(), cfg.min_rto_us);
}

TEST(AdaptiveRto, FixedModeKeepsConfiguredTimer) {
    connection_config cfg;  // adaptive off
    harness h(cfg);
    for (int i = 0; i < 5; ++i) {
        ASSERT_TRUE(h.send(128, i));
        h.clock.advance(5000);
    }
    EXPECT_EQ(h.sender.effective_rto_us(), cfg.rto_us);
}

TEST(AdaptiveRto, BackoffDoublesUntilAcked) {
    net::fault_config faults;
    faults.drop_probability = 1.0;  // nothing gets through
    connection_config cfg;
    cfg.adaptive_rto = true;
    cfg.rto_us = 4000;  // initial RTO before any sample
    cfg.max_retries = 5;
    harness h(cfg, faults);
    ASSERT_TRUE(h.send(64, 1));
    const sim_time rto0 = h.sender.effective_rto_us();
    h.clock.advance(rto0 + 1);  // first timeout
    const sim_time rto1 = h.sender.effective_rto_us();
    EXPECT_EQ(rto1, 2 * rto0);
    h.clock.advance(rto1 + 1);
    EXPECT_EQ(h.sender.effective_rto_us(), 4 * rto0);
}

TEST(AdaptiveRto, KarnsRuleIgnoresRetransmittedSamples) {
    // Drop the first copy of one segment.  Its eventual ACK (for the
    // retransmission) must not poison the RTT estimate with the huge
    // first-send-to-ack interval.
    net::fault_config faults;
    faults.drop_probability = 0.4;
    faults.seed = 21;
    connection_config cfg;
    cfg.adaptive_rto = true;
    cfg.rto_us = 50'000;
    harness h(cfg, faults, /*latency=*/1000);
    // One message in flight at a time: a dropped segment is delivered by a
    // retransmission whose first-send-to-ack interval includes the whole
    // 50+ ms timeout.  Without Karn's rule those intervals would drag SRTT
    // far above the true 2 ms path RTT.
    for (int i = 0; i < 60; ++i) {
        ASSERT_TRUE(h.send(128, 100 + i));
        const sim_time deadline = h.clock.now() + 10'000'000;
        while (!h.sender.idle() && !h.sender.failed() &&
               h.clock.now() < deadline) {
            h.clock.advance(1000);
        }
        ASSERT_TRUE(h.sender.idle()) << "message " << i;
    }
    EXPECT_EQ(h.delivered, 60);
    EXPECT_GT(h.sender.stats().retransmissions, 0u);
    EXPECT_GT(h.sender.smoothed_rtt_us(), 1000);
    EXPECT_LT(h.sender.smoothed_rtt_us(), 12'000);
}

TEST(AdaptiveRto, RecoversFasterThanFixedTimerUnderLoss) {
    // With a long fixed RTO, a lossy transfer stalls on every drop; the
    // adaptive timer converges to the path RTT and recovers much sooner.
    const auto run = [](bool adaptive) {
        net::fault_config faults;
        faults.drop_probability = 0.25;
        faults.seed = 33;
        connection_config cfg;
        cfg.adaptive_rto = adaptive;
        cfg.rto_us = 500'000;  // pessimistic fixed timer
        cfg.max_retries = 30;
        harness h(cfg, faults, 1000);
        for (int i = 0; i < 40; ++i) {
            while (!h.send(256, 200 + i)) h.clock.advance(2000);
            h.clock.advance(3000);
        }
        const sim_time deadline = h.clock.now() + 600'000'000ull;
        while (!h.sender.idle() && !h.sender.failed() &&
               h.clock.now() < deadline) {
            h.clock.advance(2000);
        }
        EXPECT_TRUE(h.sender.idle());
        EXPECT_EQ(h.delivered, 40);
        return h.clock.now();
    };
    const sim_time adaptive_time = run(true);
    const sim_time fixed_time = run(false);
    EXPECT_LT(adaptive_time * 2, fixed_time);
}

}  // namespace
}  // namespace ilp::tcp
