// Unit and property tests for the checksum module: RFC 1071 Internet
// checksum (all unit widths, parity handling, register entry points),
// CRC-32 and Adler-32 with published vectors.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buffer/byte_buffer.h"
#include "checksum/adler32.h"
#include "checksum/crc32.h"
#include "checksum/internet_checksum.h"
#include "memsim/configs.h"
#include "util/rng.h"

namespace ilp::checksum {
namespace {

std::vector<std::byte> bytes_of(std::initializer_list<unsigned> values) {
    std::vector<std::byte> out;
    for (const unsigned v : values) out.push_back(static_cast<std::byte>(v));
    return out;
}

std::span<const std::byte> as_bytes(const char* s) {
    return {reinterpret_cast<const std::byte*>(s), std::strlen(s)};
}

// Straight-line reference implementation, 16 bits at a time, per RFC 1071.
std::uint16_t reference_checksum(std::span<const std::byte> data) {
    std::uint64_t sum = 0;
    std::size_t i = 0;
    for (; i + 1 < data.size(); i += 2) {
        sum += (std::to_integer<std::uint64_t>(data[i]) << 8) |
               std::to_integer<std::uint64_t>(data[i + 1]);
    }
    if (i < data.size()) sum += std::to_integer<std::uint64_t>(data[i]) << 8;
    while (sum >> 16) sum = (sum & 0xffff) + (sum >> 16);
    return static_cast<std::uint16_t>(~sum);
}

TEST(InetChecksum, Rfc1071WorkedExample) {
    // The classic example: words 0001 f203 f4f5 f6f7 -> checksum 220d.
    const auto data = bytes_of({0x00, 0x01, 0xf2, 0x03, 0xf4, 0xf5, 0xf6, 0xf7});
    EXPECT_EQ(inet_checksum(data), 0x220d);
}

TEST(InetChecksum, EmptyDataIsAllOnes) { EXPECT_EQ(inet_checksum({}), 0xffff); }

TEST(InetChecksum, VerifyIncludingChecksumField) {
    auto data = bytes_of({0x45, 0x00, 0x00, 0x28, 0x1c, 0x46});
    const std::uint16_t sum = inet_checksum(data);
    data.push_back(static_cast<std::byte>(sum >> 8));
    data.push_back(static_cast<std::byte>(sum & 0xff));
    EXPECT_TRUE(inet_checksum_ok(data));
    data[0] ^= std::byte{0x01};
    EXPECT_FALSE(inet_checksum_ok(data));
}

class InetChecksumWidths : public ::testing::TestWithParam<std::size_t> {};

TEST_P(InetChecksumWidths, AllUnitWidthsMatchReference) {
    // Property: accumulating in 2-, 4- or 8-byte loads never changes the
    // result — that is what makes the checksum fusable at Le = lcm(...).
    rng r(123);
    for (const std::size_t len : {0u, 1u, 2u, 3u, 7u, 8u, 9u, 64u, 1023u, 1024u}) {
        std::vector<std::byte> data(len);
        r.fill(data);
        inet_accumulator acc;
        acc.add_bytes(memsim::direct_memory{}, data, GetParam());
        EXPECT_EQ(acc.finish(), reference_checksum(data)) << "len=" << len;
    }
}

INSTANTIATE_TEST_SUITE_P(Widths, InetChecksumWidths,
                         ::testing::Values(2, 4, 8));

TEST(InetChecksum, ChunkedAccumulationMatchesWhole) {
    // Property: any chunking of the byte stream (including odd chunks)
    // produces the same checksum.
    rng r(77);
    std::vector<std::byte> data(301);
    r.fill(data);
    const std::uint16_t whole = reference_checksum(data);
    for (const std::size_t step : {1u, 2u, 3u, 5u, 8u, 13u, 300u}) {
        inet_accumulator acc;
        for (std::size_t off = 0; off < data.size(); off += step) {
            const std::size_t n = std::min(step, data.size() - off);
            acc.add_bytes(memsim::direct_memory{},
                          {data.data() + off, n}, 2);
        }
        EXPECT_EQ(acc.finish(), whole) << "step=" << step;
    }
}

TEST(InetChecksum, RegisterEntryPointsMatchMemoryForm) {
    rng r(5);
    std::vector<std::byte> data(64);
    r.fill(data);
    inet_accumulator by_u64;
    for (std::size_t i = 0; i < 64; i += 8) {
        std::uint64_t v;
        std::memcpy(&v, data.data() + i, 8);
        by_u64.add_register_u64(v);
    }
    inet_accumulator by_u32;
    for (std::size_t i = 0; i < 64; i += 4) {
        std::uint32_t v;
        std::memcpy(&v, data.data() + i, 4);
        by_u32.add_register_u32(v);
    }
    EXPECT_EQ(by_u64.finish(), reference_checksum(data));
    EXPECT_EQ(by_u32.finish(), reference_checksum(data));
}

TEST(InetChecksum, BytewiseOddParityTracked) {
    inet_accumulator acc;
    acc.add_byte(0x12);
    EXPECT_TRUE(acc.odd());
    acc.add_byte(0x34);
    EXPECT_FALSE(acc.odd());
    EXPECT_EQ(acc.finish(), static_cast<std::uint16_t>(~0x1234));
}

TEST(InetChecksum, OrderIndependenceOfWords) {
    // One's-complement addition commutes: summing the words of a message in
    // any order gives the same checksum.  This is the property that lets
    // message parts B, C, A be processed out of order (paper §3.2.2).
    const auto data =
        bytes_of({1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16});
    inet_accumulator forward;
    forward.add_bytes(memsim::direct_memory{}, data, 2);
    inet_accumulator shuffled;
    // parts: B = [8,12), C = [12,16), A = [0,8)
    shuffled.add_bytes(memsim::direct_memory{}, {data.data() + 8, 4}, 2);
    shuffled.add_bytes(memsim::direct_memory{}, {data.data() + 12, 4}, 2);
    shuffled.add_bytes(memsim::direct_memory{}, {data.data(), 8}, 2);
    EXPECT_EQ(forward.finish(), shuffled.finish());
}

TEST(InetChecksum, SimulatedAccessCountsScaleWithWidth) {
    // The whole point of the width parameter: 8-byte loads issue a quarter
    // of the memory operations 2-byte loads do.
    byte_buffer data(1024);
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);

    inet_accumulator acc2;
    acc2.add_bytes(mem, data.span(), 2);
    const std::uint64_t ops2 = sys.data_stats().total_accesses();

    sys.reset(true);
    inet_accumulator acc8;
    acc8.add_bytes(mem, data.span(), 8);
    const std::uint64_t ops8 = sys.data_stats().total_accesses();

    EXPECT_EQ(acc2.finish(), acc8.finish());
    EXPECT_EQ(ops2, 512u);
    EXPECT_EQ(ops8, 128u);
}

TEST(Crc32, PublishedVector) {
    // CRC-32/IEEE of "123456789" is 0xCBF43926.
    EXPECT_EQ(crc32_of(as_bytes("123456789")), 0xcbf43926u);
}

TEST(Crc32, EmptyIsZero) { EXPECT_EQ(crc32_of({}), 0u); }

TEST(Crc32, IncrementalMatchesOneShot) {
    const auto data = as_bytes("integrated layer processing");
    crc32 inc;
    inc.update(data.subspan(0, 10));
    inc.update(data.subspan(10));
    EXPECT_EQ(inc.value(), crc32_of(data));
}

TEST(Crc32, OrderDependence) {
    // CRC is ordering-constrained (paper §2.2): swapping two halves changes
    // the result — unlike the Internet checksum.
    const auto data = as_bytes("abcdefgh");
    crc32 forward;
    forward.update(data);
    crc32 swapped;
    swapped.update(data.subspan(4));
    swapped.update(data.subspan(0, 4));
    EXPECT_NE(forward.value(), swapped.value());
}

TEST(Crc32, ScratchEntryMatchesMemoryEntry) {
    const auto data = as_bytes("0123456789abcdef");
    crc32 a;
    a.update(data);
    crc32 b;
    b.update_scratch(memsim::direct_memory{}, data.data(), data.size());
    EXPECT_EQ(a.value(), b.value());
}

TEST(Crc32, SimulatedRunCountsTableReads) {
    memsim::memory_system sys(memsim::test_tiny());
    memsim::sim_memory mem(sys);
    byte_buffer data(100);
    crc32 crc;
    crc.update(mem, data.span());
    // One data byte read + one 4-byte table read per input byte.
    EXPECT_EQ(sys.data_stats().reads.accesses[memsim::size_bucket(1)], 100u);
    EXPECT_EQ(sys.data_stats().reads.accesses[memsim::size_bucket(4)], 100u);
}

TEST(Adler32, PublishedVector) {
    // Adler-32 of "Wikipedia" is 0x11E60398.
    EXPECT_EQ(adler32_of(as_bytes("Wikipedia")), 0x11e60398u);
}

TEST(Adler32, EmptyIsOne) { EXPECT_EQ(adler32_of({}), 1u); }

TEST(Adler32, LargeInputModuloCorrectness) {
    // Exercise the deferred-modulo blocking with > 5552 bytes of 0xff.
    std::vector<std::byte> data(20'000, std::byte{0xff});
    adler32 sum;
    sum.update(data);
    // Reference computed with the naive definition.
    std::uint32_t a = 1, b = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
        a = (a + 0xff) % 65521;
        b = (b + a) % 65521;
    }
    EXPECT_EQ(sum.value(), (b << 16) | a);
}

TEST(Adler32, OrderDependence) {
    const auto data = as_bytes("abcdefgh");
    adler32 forward;
    forward.update(data);
    adler32 swapped;
    swapped.update(data.subspan(4));
    swapped.update(data.subspan(0, 4));
    EXPECT_NE(forward.value(), swapped.value());
}

}  // namespace
}  // namespace ilp::checksum
