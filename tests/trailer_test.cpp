// Tests for trailer framing: layout arithmetic, round trips, and the
// qualitative claim from the paper's conclusion — with the length field at
// the end, *ordering-constrained* stages become fusable on the send path.
#include <gtest/gtest.h>

#include <cstring>

#include "buffer/byte_buffer.h"
#include "checksum/crc32.h"
#include "checksum/internet_checksum.h"
#include "core/fused_pipeline.h"
#include "core/stage.h"
#include "crypto/rc4.h"
#include "crypto/safer_simplified.h"
#include "rpc/trailer.h"
#include "util/endian.h"
#include "util/rng.h"

namespace ilp::rpc {
namespace {

using memsim::direct_memory;

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng r(seed);
    r.fill(v);
    return v;
}

TEST(TrailerLayout, Arithmetic) {
    for (const std::size_t body : {0u, 1u, 7u, 8u, 9u, 100u, 1024u}) {
        const trailer_layout layout = layout_trailer_message(body);
        EXPECT_EQ(layout.wire_bytes % core::encryption_unit_bytes, 0u);
        EXPECT_EQ(layout.body_bytes + layout.padding_bytes + trailer_bytes,
                  layout.wire_bytes);
        EXPECT_LT(layout.padding_bytes, core::encryption_unit_bytes);
    }
}

TEST(Trailer, SourceLayout) {
    const auto body_data = random_bytes(13, 1);
    core::gather_source body;
    body.add(body_data);
    trailer_staging staging;
    const core::gather_source src = make_trailer_source(body, staging);
    const trailer_layout layout = layout_trailer_message(13);
    ASSERT_EQ(src.total_size(), layout.wire_bytes);

    byte_buffer wire(layout.wire_bytes);
    core::fused_pipeline<> copy;
    copy.run(direct_memory{}, src, core::span_dest(wire.span()));

    EXPECT_EQ(std::memcmp(wire.data(), body_data.data(), 13), 0);
    for (std::size_t i = 13; i < layout.wire_bytes - trailer_bytes; ++i) {
        EXPECT_EQ(wire.data()[i], std::byte{0});
    }
    const auto body_len = read_trailer(
        wire.subspan(layout.wire_bytes - trailer_bytes, trailer_bytes),
        layout.wire_bytes);
    ASSERT_TRUE(body_len.has_value());
    EXPECT_EQ(*body_len, 13u);
}

TEST(Trailer, ReadRejectsBadMagicAndLength) {
    std::byte block[8];
    store_be32(block, 16);
    store_be32(block + 4, trailer_magic);
    EXPECT_TRUE(read_trailer(block, layout_trailer_message(16).wire_bytes)
                    .has_value());
    store_be32(block + 4, 0xdeadbeef);
    EXPECT_FALSE(read_trailer(block, layout_trailer_message(16).wire_bytes)
                     .has_value());
    store_be32(block + 4, trailer_magic);
    EXPECT_FALSE(read_trailer(block, 8).has_value());  // inconsistent total
}

TEST(Trailer, BlockCipherReceiverReadsTrailerFirst) {
    // Block-cipher receive: decrypt the *last* block first to learn the
    // body length, then stream the rest — the mirror image of the header
    // framing's part A.
    std::array<std::byte, 8> key;
    rng kr(2);
    kr.fill(key);
    const crypto::safer_simplified cipher(key);
    const auto body_data = random_bytes(100, 3);

    // Send: one linear pass.
    core::gather_source body;
    body.add(body_data);
    trailer_staging staging;
    const core::gather_source src = make_trailer_source(body, staging);
    const std::size_t wire_len = src.total_size();
    byte_buffer wire(wire_len);
    checksum::inet_accumulator send_sum;
    core::encrypt_stage<crypto::safer_simplified> enc(cipher);
    core::checksum_tap8 tap(send_sum);
    auto send_loop = core::make_pipeline(enc, tap);
    send_loop.run(direct_memory{}, src, core::span_dest(wire.span()));

    // Receive: trailer block first.
    core::decrypt_stage<crypto::safer_simplified> dec(cipher);
    checksum::inet_accumulator recv_sum;
    core::checksum_tap8 rtap(recv_sum);
    auto recv_loop = core::make_pipeline(rtap, dec);

    alignas(8) std::byte trailer_plain[8];
    recv_loop.run(direct_memory{},
                  core::span_source(wire.subspan(wire_len - 8, 8)),
                  core::span_dest({trailer_plain, 8}));
    const auto body_len = read_trailer({trailer_plain, 8}, wire_len);
    ASSERT_TRUE(body_len.has_value());
    ASSERT_EQ(*body_len, body_data.size());

    byte_buffer restored(*body_len);
    core::scatter_dest dst;
    dst.add(restored.span());
    dst.add_discard(wire_len - 8 - *body_len);
    recv_loop.run(direct_memory{},
                  core::span_source(wire.subspan(0, wire_len - 8)), dst);

    EXPECT_EQ(std::memcmp(restored.data(), body_data.data(), *body_len), 0);
    // Checksum covers the whole ciphertext either way (order-independent).
    EXPECT_EQ(send_sum.folded(), recv_sum.folded());
}

TEST(Trailer, OrderingConstrainedStagesFuseOnSend) {
    // The headline benefit: CRC-32 and RC4 — both ordering-constrained and
    // therefore incompatible with the header framing's B,C,A order — fuse
    // into a single linear send loop under trailer framing.
    const char* key_text = "trailerk";
    const auto key = std::span<const std::byte>{
        reinterpret_cast<const std::byte*>(key_text), 8};
    const auto body_data = random_bytes(96, 4);

    core::gather_source body;
    body.add(body_data);
    trailer_staging staging;
    const core::gather_source src = make_trailer_source(body, staging);
    const std::size_t wire_len = src.total_size();

    crypto::rc4 enc(key);
    checksum::crc32 send_crc;
    crypto::rc4_stage enc_stage(enc);
    core::crc32_tap crc_stage(send_crc);
    auto send_loop = core::make_pipeline(enc_stage, crc_stage);
    static_assert(decltype(send_loop)::ordering_constrained);

    byte_buffer wire(wire_len);
    send_loop.run(direct_memory{}, src, core::span_dest(wire.span()));

    // Stream-cipher receive has no choice but front-to-back; the length is
    // known only once the trailer decrypts at the end — and that is fine,
    // because TCP already delimits the TPDU.
    crypto::rc4 dec(key);
    checksum::crc32 recv_crc;
    crypto::rc4_stage dec_stage(dec);
    core::crc32_tap recv_crc_stage(recv_crc);
    auto recv_loop = core::make_pipeline(recv_crc_stage, dec_stage);

    byte_buffer plain(wire_len);
    recv_loop.run(direct_memory{}, core::span_source(wire.span()),
                  core::span_dest(plain.span()));
    const auto body_len =
        read_trailer(plain.subspan(wire_len - 8, 8), wire_len);
    ASSERT_TRUE(body_len.has_value());
    EXPECT_EQ(*body_len, body_data.size());
    EXPECT_EQ(std::memcmp(plain.data(), body_data.data(), *body_len), 0);
    EXPECT_EQ(send_crc.value(), recv_crc.value());  // CRC over ciphertext
}

}  // namespace
}  // namespace ilp::rpc
