// Per-flow key lifecycle: KDF determinism, the two-epoch keychain window,
// key-schedule hygiene (zeroize on retirement), the AEAD-shaped cipher, the
// secure wire-v3 framing, and the rekey-under-chaos contract — every fault
// cell ends byte-verified or fails *explicitly* with a distinct cause
// (tag_mismatch / epoch_skew), never silently.
#include <gtest/gtest.h>

#include <array>
#include <cstring>
#include <new>
#include <string>
#include <tuple>
#include <vector>

#include "app/harness.h"
#include "app/secure_path.h"
#include "crypto/aead.h"
#include "crypto/des.h"
#include "crypto/kdf.h"
#include "crypto/rc4.h"
#include "crypto/safer_k64.h"
#include "engine/fleet.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "rpc/messages.h"
#include "util/rng.h"

namespace ilp {
namespace {

using memsim::direct_memory;
using crypto::aead_cipher;
using crypto::key_epoch;

// ---------------------------------------------------------------------------
// KDF + keychain

std::vector<std::byte> encrypt_probe(const aead_cipher& cipher) {
    std::vector<std::byte> block(aead_cipher::block_bytes);
    for (std::size_t i = 0; i < block.size(); ++i) {
        block[i] = static_cast<std::byte>(i + 1);
    }
    cipher.encrypt_block(direct_memory{}, block.data());
    return block;
}

TEST(Kdf, SameSecretSameEpochSameKey) {
    const auto a = crypto::derive_epoch_cipher<aead_cipher>(0x1234, 7);
    const auto b = crypto::derive_epoch_cipher<aead_cipher>(0x1234, 7);
    EXPECT_EQ(encrypt_probe(a), encrypt_probe(b));
}

TEST(Kdf, EpochAndSecretBothSeparateKeys) {
    const auto base = crypto::derive_epoch_cipher<aead_cipher>(0x1234, 7);
    const auto next_epoch = crypto::derive_epoch_cipher<aead_cipher>(0x1234, 8);
    const auto other_secret =
        crypto::derive_epoch_cipher<aead_cipher>(0x1235, 7);
    const auto control = crypto::derive_control_cipher<aead_cipher>(0x1234);
    EXPECT_NE(encrypt_probe(base), encrypt_probe(next_epoch));
    EXPECT_NE(encrypt_probe(base), encrypt_probe(other_secret));
    EXPECT_NE(encrypt_probe(base), encrypt_probe(control));
}

TEST(Keychain, WindowHoldsCurrentAndPrevious) {
    crypto::keychain<aead_cipher> chain(0xbeef);
    EXPECT_EQ(chain.current_epoch(), 0u);
    EXPECT_NE(chain.cipher_for(0), nullptr);
    EXPECT_EQ(chain.cipher_for(1), nullptr);  // not derived yet

    chain.advance();
    EXPECT_EQ(chain.current_epoch(), 1u);
    ASSERT_NE(chain.cipher_for(0), nullptr);  // previous epoch still accepted
    ASSERT_NE(chain.cipher_for(1), nullptr);
    // The windowed epoch-0 key is the *same* key material epoch 0 used.
    const auto fresh0 = crypto::derive_epoch_cipher<aead_cipher>(0xbeef, 0);
    EXPECT_EQ(encrypt_probe(*chain.cipher_for(0)), encrypt_probe(fresh0));

    chain.advance();
    EXPECT_EQ(chain.cipher_for(0), nullptr);  // retired
    EXPECT_NE(chain.cipher_for(1), nullptr);
    EXPECT_NE(chain.cipher_for(2), nullptr);
}

TEST(Keychain, AdoptJumpsForwardOnly) {
    crypto::keychain<aead_cipher> chain(0xbeef);
    EXPECT_FALSE(chain.adopt(0));  // not a forward jump
    EXPECT_TRUE(chain.adopt(1));   // plain advance
    EXPECT_EQ(chain.current_epoch(), 1u);
    EXPECT_TRUE(chain.adopt(5));  // outage hid several rekeys
    EXPECT_EQ(chain.current_epoch(), 5u);
    EXPECT_NE(chain.cipher_for(4), nullptr);  // window re-centred on {4, 5}
    EXPECT_EQ(chain.cipher_for(3), nullptr);
    EXPECT_FALSE(chain.adopt(2));  // stale epochs never re-adopted
    EXPECT_EQ(chain.current_epoch(), 5u);
}

// The hygiene contract's sharp edge: touching a retired epoch is a
// programming error that must abort, never hand back a stale key.
using KeychainDeathTest = ::testing::Test;

TEST(KeychainDeathTest, RetiredEpochIsUnreachable) {
    crypto::keychain<aead_cipher> chain(0xbeef);
    chain.advance();
    chain.advance();  // window is {1, 2}; epoch 0 retired
    EXPECT_DEATH((void)chain.require(0), "");
}

// ---------------------------------------------------------------------------
// Key-schedule zeroization on teardown

// Destroys a placement-new'd cipher and returns how many bytes of its
// storage remain nonzero.  Reading the raw storage after the destructor is
// fine: it is just a byte array the object used to live in.
template <typename Cipher, std::size_t KeyBytes>
std::size_t nonzero_bytes_after_destruction() {
    // Zero-filled storage, so struct padding (never written by the object)
    // cannot masquerade as leaked key material.
    alignas(Cipher) std::byte storage[sizeof(Cipher)] = {};
    std::array<std::byte, KeyBytes> key;
    rng r(99);
    r.fill(key);
    Cipher* cipher = new (storage) Cipher(key);
    (void)cipher;
    cipher->~Cipher();
    std::size_t nonzero = 0;
    for (const std::byte b : storage) {
        if (b != std::byte{0}) ++nonzero;
    }
    return nonzero;
}

TEST(Zeroize, CipherSchedulesAreScrubbedOnTeardown) {
    // des and aead hold nothing but key material: all-zero after teardown.
    EXPECT_EQ((nonzero_bytes_after_destruction<crypto::des, 8>()), 0u);
    EXPECT_EQ((nonzero_bytes_after_destruction<aead_cipher, 16>()), 0u);
    // rc4's state array and indices are scrubbed likewise.
    EXPECT_EQ((nonzero_bytes_after_destruction<crypto::rc4, 16>()), 0u);
    // safer_k64 keeps its (non-secret) round count; everything else — the
    // expanded subkey schedule — must be gone.
    EXPECT_LE((nonzero_bytes_after_destruction<crypto::safer_k64, 8>()),
              sizeof(unsigned));
}

TEST(Zeroize, KeychainAdvanceScrubsTheRetiredEpoch) {
    // advance() destroys the epoch-(current-1) cipher in place; the
    // destructor contract above is what makes that retirement real.  Here we
    // pin the observable half: the retired epoch is no longer derivable from
    // the chain (cipher_for refuses) even though current-1 still is.
    crypto::keychain<aead_cipher> chain(0x5eed);
    chain.advance();
    chain.advance();
    EXPECT_EQ(chain.cipher_for(0), nullptr);
    EXPECT_NE(chain.cipher_for(1), nullptr);
}

// ---------------------------------------------------------------------------
// AEAD cipher

TEST(Aead, EncryptDecryptRoundTrip) {
    std::array<std::byte, aead_cipher::key_bytes> key;
    rng r(3);
    r.fill(key);
    const aead_cipher cipher{std::span<const std::byte>(key)};
    std::array<std::byte, 8> block;
    r.fill(block);
    const auto original = block;
    cipher.encrypt_block(direct_memory{}, block.data());
    EXPECT_NE(block, original);
    cipher.decrypt_block(direct_memory{}, block.data());
    EXPECT_EQ(block, original);
}

TEST(Aead, TagIsOrderIndependentButKeyAndDataSensitive) {
    std::array<std::byte, aead_cipher::key_bytes> key;
    rng r(4);
    r.fill(key);
    const aead_cipher cipher{std::span<const std::byte>(key)};
    const std::uint64_t words[] = {1, 0x1234, 0xffffffffffull};

    crypto::aead_tag_accumulator forward, backward;
    for (const std::uint64_t w : words) forward.add(cipher.tag_mix(w));
    for (int i = 2; i >= 0; --i) backward.add(cipher.tag_mix(words[i]));
    // Commutative accumulation: the fused B,C,A traversal tags the same
    // value as the receiver's linear pass.
    EXPECT_EQ(forward.fold(), backward.fold());

    crypto::aead_tag_accumulator tampered;
    tampered.add(cipher.tag_mix(words[0] ^ 1));
    tampered.add(cipher.tag_mix(words[1]));
    tampered.add(cipher.tag_mix(words[2]));
    EXPECT_NE(forward.fold(), tampered.fold());

    key[0] ^= std::byte{1};
    const aead_cipher other{std::span<const std::byte>(key)};
    crypto::aead_tag_accumulator wrong_key;
    for (const std::uint64_t w : words) wrong_key.add(other.tag_mix(w));
    EXPECT_NE(forward.fold(), wrong_key.fold());
}

// ---------------------------------------------------------------------------
// Wire v3 marshalling

TEST(WireV3, RequestRoundTripsEpoch) {
    rpc::file_request request;
    request.request_id = 42;
    request.filename = "f.dat";
    request.version = rpc::wire_version_secure;
    request.key_epoch = 9;
    std::array<std::byte, 256> buf{};
    const auto n = rpc::marshal_request(request, buf);
    ASSERT_TRUE(n.has_value());
    const auto parsed = rpc::unmarshal_request(std::span(buf).first(*n));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->version, rpc::wire_version_secure);
    EXPECT_EQ(parsed->key_epoch, 9u);
    EXPECT_EQ(parsed->request_id, 42u);
}

TEST(WireV3, V2RequestStaysV2AndCarriesNoEpoch) {
    rpc::file_request request;
    // 9-character name: the v2 image lands exactly 8-aligned, so the v3
    // epoch word costs a full alignment step and the delta is visible.
    request.filename = "files/abc";
    request.version = rpc::wire_version;
    request.key_epoch = 9;  // must not be marshalled in v2
    std::array<std::byte, 256> buf{};
    const auto n2 = rpc::marshal_request(request, buf);
    ASSERT_TRUE(n2.has_value());
    EXPECT_EQ(*n2 % 8, 0u);
    const auto parsed = rpc::unmarshal_request(std::span(buf).first(*n2));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->version, rpc::wire_version);
    EXPECT_EQ(parsed->key_epoch, 0u);

    request.version = rpc::wire_version_secure;
    const auto n3 = rpc::marshal_request(request, buf);
    ASSERT_TRUE(n3.has_value());
    EXPECT_EQ(*n3, *n2 + 8);  // one extra XDR word, kept 8-aligned
}

TEST(WireV3, TrailerRoundTrips) {
    std::array<std::byte, rpc::secure_trailer_bytes> bytes{};
    rpc::encode_secure_trailer({.key_epoch = 7, .tag = 0xdeadbeef}, bytes);
    const rpc::secure_trailer t = rpc::decode_secure_trailer(bytes);
    EXPECT_EQ(t.key_epoch, 7u);
    EXPECT_EQ(t.tag, 0xdeadbeefu);
    EXPECT_EQ(rpc::max_payload_for_secure_wire(1024),
              rpc::max_payload_for_wire(1024 - rpc::secure_trailer_bytes));
    EXPECT_EQ(rpc::max_payload_for_secure_wire(rpc::secure_trailer_bytes), 0u);
}

// ---------------------------------------------------------------------------
// Secure receive path: failure taxonomy and the epoch window, unit level

constexpr std::uint64_t fixture_secret = 0xfee1;

struct secure_fixture {
    std::vector<std::byte> payload;
    byte_buffer wire;  // encrypted body + clear trailer
    rpc::reply_layout layout;

    explicit secure_fixture(key_epoch epoch, std::size_t payload_bytes = 200,
                            std::uint64_t secret = fixture_secret)
        : payload(payload_bytes),
          wire(rpc::layout_reply(payload_bytes).wire_bytes +
               rpc::secure_trailer_bytes),
          layout(rpc::layout_reply(payload_bytes)) {
        rng r(7);
        r.fill(payload);
        rpc::reply_header header;
        header.request_id = 9;
        header.total_bytes = static_cast<std::uint32_t>(payload_bytes);
        rpc::reply_staging staging;
        const auto src = rpc::make_reply_source(header, payload, staging);
        const aead_cipher cipher =
            crypto::derive_epoch_cipher<aead_cipher>(secret, epoch);
        crypto::aead_tag_accumulator tag;
        core::aead_encrypt_stage<aead_cipher> enc(cipher, tag);
        auto pipe = core::make_pipeline(enc);
        const std::span<std::byte> body =
            wire.span().first(layout.wire_bytes);
        pipe.run(direct_memory{}, src, core::span_dest(body));
        rpc::encode_secure_trailer({.key_epoch = epoch, .tag = tag.fold()},
                                   wire.span().subspan(layout.wire_bytes));
    }
};

app::secure_rx_status receive_into(secure_fixture& f,
                                   crypto::keychain<aead_cipher>& chain,
                                   app::path_mode mode,
                                   std::span<std::byte> dest) {
    rpc::reply_header header;
    app::secure_rx_status status;
    app::path_counters counters;
    const auto resolve = [&](const rpc::reply_header&,
                             std::size_t n) -> std::span<std::byte> {
        return dest.size() >= n ? dest.subspan(0, n) : std::span<std::byte>{};
    };
    app::receive_reply_secure(mode, direct_memory{}, chain, f.wire.span(),
                              resolve, &header, &status, counters);
    return status;
}

TEST(SecureReceive, HappyPathBothModes) {
    for (const auto mode : {app::path_mode::ilp, app::path_mode::layered}) {
        secure_fixture f(/*epoch=*/0);
        crypto::keychain<aead_cipher> chain(fixture_secret);
        byte_buffer dest(f.payload.size());
        const auto status = receive_into(f, chain, mode, dest.span());
        EXPECT_EQ(status.cause, app::secure_rx_cause::ok);
        EXPECT_FALSE(status.window_hit);
        EXPECT_EQ(std::memcmp(dest.span().data(), f.payload.data(),
                              f.payload.size()),
                  0);
    }
}

// The retransmit-tolerance property: ciphertext first sent under epoch N is
// still accepted after the receiver advanced to N+1 (the TCP ring stores
// ciphertext, so a retransmitted segment carries its original epoch).
TEST(SecureReceive, PreviousEpochRetransmitAcceptedInWindow) {
    for (const auto mode : {app::path_mode::ilp, app::path_mode::layered}) {
        secure_fixture f(/*epoch=*/0);
        crypto::keychain<aead_cipher> chain(fixture_secret);
        chain.advance();  // receiver already at epoch 1
        byte_buffer dest(f.payload.size());
        const auto status = receive_into(f, chain, mode, dest.span());
        EXPECT_EQ(status.cause, app::secure_rx_cause::ok);
        EXPECT_TRUE(status.window_hit);
        EXPECT_EQ(chain.current_epoch(), 1u);  // no regression
        EXPECT_EQ(std::memcmp(dest.span().data(), f.payload.data(),
                              f.payload.size()),
                  0);
    }
}

// Zero-copy shape: the same secure wire delivered as a two-piece ring-loan
// chain must behave bit-identically to the contiguous span, including when
// the split lands inside the 8-byte clear trailer (the [epoch|tag] words
// are decoded before the fused loop starts, per the paper's R2 rule).
TEST(SecureReceive, ChainMatchesSpanIncludingTrailerSplits) {
    secure_fixture base(/*epoch=*/0);
    crypto::keychain<aead_cipher> chain_s(fixture_secret);
    byte_buffer dest_s(base.payload.size());
    const auto status_s =
        receive_into(base, chain_s, app::path_mode::ilp, dest_s.span());
    ASSERT_EQ(status_s.cause, app::secure_rx_cause::ok);

    const std::size_t wire_bytes = base.wire.size();
    const std::size_t body = wire_bytes - rpc::secure_trailer_bytes;
    const std::size_t splits[] = {1,        13,       body - 3, body,
                                  body + 1, body + 4, body + 7};
    for (const std::size_t split : splits) {
        secure_fixture f(/*epoch=*/0);
        byte_buffer arena(wire_bytes + 32);
        std::byte* a = arena.data() + arena.size() - split;
        std::memcpy(a, f.wire.data(), split);
        std::memcpy(arena.data(), f.wire.data() + split, wire_bytes - split);
        const_ring_span wire_chain;
        wire_chain.first = {a, split};
        wire_chain.second = {arena.data(), wire_bytes - split};

        crypto::keychain<aead_cipher> kc(fixture_secret);
        byte_buffer dest(f.payload.size());
        rpc::reply_header header;
        app::secure_rx_status status;
        app::path_counters counters;
        const auto resolve = [&](const rpc::reply_header&,
                                 std::size_t n) -> std::span<std::byte> {
            return dest.size() >= n ? dest.span().subspan(0, n)
                                    : std::span<std::byte>{};
        };
        const auto result = app::receive_reply_secure(
            app::path_mode::ilp, direct_memory{}, kc, wire_chain, resolve,
            &header, &status, counters);
        EXPECT_TRUE(result.ok) << "split=" << split;
        EXPECT_EQ(status.cause, app::secure_rx_cause::ok) << "split=" << split;
        EXPECT_EQ(std::memcmp(dest.data(), f.payload.data(),
                              f.payload.size()),
                  0)
            << "split=" << split;
        EXPECT_EQ(header.request_id, 9u);
    }
}

TEST(SecureReceive, ForwardEpochIsAdoptedAfterTagVerifies) {
    secure_fixture f(/*epoch=*/3);
    crypto::keychain<aead_cipher> chain(fixture_secret);
    byte_buffer dest(f.payload.size());
    const auto status =
        receive_into(f, chain, app::path_mode::ilp, dest.span());
    EXPECT_EQ(status.cause, app::secure_rx_cause::ok);
    EXPECT_TRUE(status.adopted);
    EXPECT_EQ(chain.current_epoch(), 3u);
    EXPECT_NE(chain.cipher_for(2), nullptr);  // window re-centred on {2, 3}
}

TEST(SecureReceive, EpochBehindWindowIsExplicitSkew) {
    secure_fixture f(/*epoch=*/0);
    crypto::keychain<aead_cipher> chain(fixture_secret);
    EXPECT_TRUE(chain.adopt(3));  // window {2, 3}; epoch 0 retired
    byte_buffer dest(f.payload.size());
    const auto status =
        receive_into(f, chain, app::path_mode::ilp, dest.span());
    EXPECT_EQ(status.cause, app::secure_rx_cause::epoch_skew);
    EXPECT_STREQ(to_string(status.cause), "epoch_skew");
}

// A wrong key garbles the header before the tag is ever reached; the
// classifier must still call it tag_mismatch (by finishing the decrypt into
// a discard destination and comparing tags), never "malformed".
TEST(SecureReceive, WrongKeyIsExplicitTagMismatchBothModes) {
    for (const auto mode : {app::path_mode::ilp, app::path_mode::layered}) {
        secure_fixture f(/*epoch=*/0, 200, /*secret=*/0xbad5ec);
        crypto::keychain<aead_cipher> chain(fixture_secret);
        byte_buffer dest(f.payload.size());
        const auto status = receive_into(f, chain, mode, dest.span());
        EXPECT_EQ(status.cause, app::secure_rx_cause::tag_mismatch);
    }
}

TEST(SecureReceive, TamperedCiphertextIsTagMismatch) {
    for (const auto mode : {app::path_mode::ilp, app::path_mode::layered}) {
        secure_fixture f(/*epoch=*/0);
        f.wire.span()[rpc::reply_payload_offset + 13] ^= std::byte{0x40};
        crypto::keychain<aead_cipher> chain(fixture_secret);
        byte_buffer dest(f.payload.size());
        const auto status = receive_into(f, chain, mode, dest.span());
        EXPECT_EQ(status.cause, app::secure_rx_cause::tag_mismatch);
    }
}

TEST(SecureReceive, TamperedTrailerTagIsTagMismatch) {
    secure_fixture f(/*epoch=*/0);
    f.wire.span()[f.layout.wire_bytes + 5] ^= std::byte{1};  // tag bytes
    crypto::keychain<aead_cipher> chain(fixture_secret);
    byte_buffer dest(f.payload.size());
    const auto status =
        receive_into(f, chain, app::path_mode::ilp, dest.span());
    EXPECT_EQ(status.cause, app::secure_rx_cause::tag_mismatch);
}

// ---------------------------------------------------------------------------
// Targeted corruption (net layer)

std::size_t corrupted_index(net::corrupt_target target, std::size_t bytes) {
    virtual_clock clock;
    net::fault_config faults;
    faults.corrupt_probability = 1.0;
    faults.corrupt_span = target;
    faults.seed = 21;
    net::datagram_pipe pipe(clock, 0, faults);
    std::vector<std::byte> received;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        received.assign(p.begin(), p.end());
    });
    std::vector<std::byte> msg(bytes);
    for (std::size_t i = 0; i < bytes; ++i) {
        msg[i] = static_cast<std::byte>(i * 7);
    }
    pipe.send(direct_memory{}, msg);
    clock.advance(1);
    EXPECT_EQ(received.size(), msg.size());
    for (std::size_t i = 0; i < bytes; ++i) {
        if (received[i] != msg[i]) return i;
    }
    ADD_FAILURE() << "no byte was corrupted";
    return bytes;
}

TEST(CorruptSpan, TargetsLandInTheirRegion) {
    constexpr std::size_t bytes = 256;
    EXPECT_LT(corrupted_index(net::corrupt_target::header, bytes), 20u);
    const std::size_t payload_hit =
        corrupted_index(net::corrupt_target::payload, bytes);
    EXPECT_GE(payload_hit, 20u);
    EXPECT_LT(payload_hit, bytes);
    EXPECT_GE(corrupted_index(net::corrupt_target::trailer_tail, bytes),
              bytes - 8);
}

TEST(CorruptSpan, PerTargetStatsAndUnchangedDrawOrder) {
    virtual_clock clock;
    net::fault_config faults;
    faults.corrupt_probability = 0.5;
    faults.drop_probability = 0.1;
    faults.seed = 33;

    // Same plan, three targets: the loss pattern (a pure function of the
    // RNG draw sequence) must be identical — targeting only remaps the
    // victim byte, it never consumes a different number of draws.
    std::array<net::pipe_stats, 3> stats;
    const net::corrupt_target targets[] = {net::corrupt_target::anywhere,
                                           net::corrupt_target::header,
                                           net::corrupt_target::trailer_tail};
    for (int t = 0; t < 3; ++t) {
        net::fault_config f = faults;
        f.corrupt_span = targets[t];
        net::datagram_pipe pipe(clock, 0, f);
        std::vector<std::byte> msg(128);
        for (int i = 0; i < 400; ++i) pipe.send(direct_memory{}, msg);
        clock.advance(1);
        stats[t] = pipe.stats();
    }
    EXPECT_EQ(stats[0].packets_dropped, stats[1].packets_dropped);
    EXPECT_EQ(stats[0].packets_dropped, stats[2].packets_dropped);
    EXPECT_EQ(stats[0].packets_corrupted, stats[1].packets_corrupted);
    EXPECT_EQ(stats[0].packets_corrupted, stats[2].packets_corrupted);
    // Per-cause rows: each targeted flip is attributed to its region.
    EXPECT_EQ(stats[0].packets_header_corrupted, 0u);
    EXPECT_EQ(stats[0].packets_tail_corrupted, 0u);
    EXPECT_EQ(stats[1].packets_header_corrupted, stats[1].packets_corrupted);
    EXPECT_EQ(stats[2].packets_tail_corrupted, stats[2].packets_corrupted);
}

// ---------------------------------------------------------------------------
// End-to-end secure transfers

app::transfer_config secure_config() {
    app::transfer_config config;
    config.file_bytes = 24 * 1024;
    config.packet_wire_bytes = 512;
    config.retry.response_timeout_us = 2'000'000;
    config.retry.max_attempts = 5;
    config.secure = true;
    config.rekey_interval_bytes = 4 * 1024;
    return config;
}

TEST(SecureTransfer, CompletesVerifiedWithRekeysBothModes) {
    for (const auto mode : {app::path_mode::ilp, app::path_mode::layered}) {
        app::transfer_config config = secure_config();
        config.mode = mode;
        const auto result = app::run_transfer_native<aead_cipher>(config);
        ASSERT_TRUE(result.completed);
        EXPECT_TRUE(result.verified);
        // The rekey interval fired several times over 24 KB of replies, and
        // the client tracked every epoch the server advanced through.
        EXPECT_GE(result.metrics.counter("crypto.rekeys"), 4u);
        EXPECT_EQ(result.metrics.counter("crypto.epoch_adoptions"),
                  result.metrics.counter("crypto.rekeys"));
        EXPECT_EQ(result.metrics.counter("crypto.tag_failures"), 0u);
        EXPECT_EQ(result.metrics.counter("crypto.epoch_skews"), 0u);
    }
}

TEST(SecureTransfer, NegotiatedDownV2FlowRunsClassicFraming) {
    app::transfer_config config = secure_config();
    config.secure_wire_version = rpc::wire_version;  // old peer
    const auto result = app::run_transfer_native<aead_cipher>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    // No trailers, epoch pinned to 0, no rekeying — but still encrypted
    // under the KDF's epoch-0 keys.
    EXPECT_EQ(result.metrics.counter("crypto.rekeys"), 0u);
    EXPECT_EQ(result.metrics.counter("crypto.epoch_adoptions"), 0u);
}

TEST(SecureTransfer, KeyMismatchFailsExplicitlyNeverSilently) {
    app::transfer_config config = secure_config();
    config.client_secret_override = 0xd15a9ee;  // endpoints disagree on keys
    const auto result = app::run_transfer_native<aead_cipher>(config);
    EXPECT_FALSE(result.completed);
    // The server rejected every request with an explicit tag mismatch; the
    // client exhausted its retry budget — an explicit failure with a
    // distinct cause, not a hang and not silent corruption.
    EXPECT_TRUE(result.recovery.gave_up);
    EXPECT_GT(result.metrics.counter("crypto.request_tag_failures"), 0u);
    EXPECT_EQ(result.payload_bytes_delivered, 0u);
}

TEST(SecureTransfer, RekeyUnderBurstLossCompletesWithoutSpuriousFailures) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        app::transfer_config config = secure_config();
        config.file_bytes = 64 * 1024;
        config.rekey_interval_bytes = 8 * 1024;
        config.forward_faults.burst.enabled = true;
        config.forward_faults.burst.p_good_to_bad = 0.05;
        config.forward_faults.burst.p_bad_to_good = 0.3;
        config.forward_faults.burst.bad_loss = 0.9;
        config.forward_faults.seed = seed;
        const auto result = app::run_transfer_native<aead_cipher>(config);
        ASSERT_TRUE(result.completed) << "seed " << seed;
        EXPECT_TRUE(result.verified) << "seed " << seed;
        EXPECT_GE(result.metrics.counter("crypto.rekeys"), 2u);
        // Retransmitted old-epoch ciphertext lands inside the key window:
        // rekeying under loss produces zero spurious rejections.
        EXPECT_EQ(result.metrics.counter("crypto.tag_failures"), 0u)
            << "seed " << seed;
        EXPECT_EQ(result.metrics.counter("crypto.epoch_skews"), 0u)
            << "seed " << seed;
    }
}

// ---------------------------------------------------------------------------
// Rekey chaos matrix: rekeying crossed with every fault family.  Exactly two
// terminal states per cell: byte-verified completion, or an explicit failure
// with a recorded recovery attempt — never a silent outcome.

struct rekey_chaos_scenario {
    const char* name;
    void (*apply)(app::transfer_config&);
};

const rekey_chaos_scenario rekey_chaos_matrix[] = {
    {"clean", [](app::transfer_config&) {}},
    {"burst_loss",
     [](app::transfer_config& c) {
         c.forward_faults.burst.enabled = true;
         c.forward_faults.burst.p_good_to_bad = 0.05;
         c.forward_faults.burst.p_bad_to_good = 0.25;
         c.forward_faults.burst.bad_loss = 0.95;
     }},
    {"ack_outage_persist",
     [](app::transfer_config& c) {
         // The ACK path dies mid-transfer: the sender's window freezes and
         // the persist/retransmit machinery carries old-epoch ciphertext
         // across the rekeys that happen after the link heals.
         c.reverse_faults.outages.push_back({1'000, 2'500'000});
     }},
    {"outage_resume",
     [](app::transfer_config& c) {
         c.file_bytes = 96 * 1024;
         c.forward_faults.outages.push_back({1'000, 2'500'000});
     }},
    {"trailer_corruption",
     [](app::transfer_config& c) {
         c.forward_faults.corrupt_probability = 0.05;
         c.forward_faults.corrupt_span = net::corrupt_target::trailer_tail;
     }},
    {"header_corruption",
     [](app::transfer_config& c) {
         c.forward_faults.corrupt_probability = 0.05;
         c.forward_faults.corrupt_span = net::corrupt_target::header;
     }},
    {"kitchen_sink",
     [](app::transfer_config& c) {
         c.forward_faults.burst.enabled = true;
         c.forward_faults.burst.p_good_to_bad = 0.05;
         c.forward_faults.burst.p_bad_to_good = 0.3;
         c.forward_faults.burst.bad_loss = 0.9;
         c.forward_faults.corrupt_probability = 0.05;
         c.forward_faults.corrupt_span = net::corrupt_target::trailer_tail;
         c.forward_faults.duplicate_probability = 0.05;
         c.reverse_faults.drop_probability = 0.05;
         c.request_forward_faults.drop_probability = 0.05;
     }},
};

class RekeyChaosMatrix
    : public ::testing::TestWithParam<std::tuple<int, app::path_mode>> {};

TEST_P(RekeyChaosMatrix, CompletesVerifiedOrFailsExplicitly) {
    const auto& [index, mode] = GetParam();
    const rekey_chaos_scenario& s = rekey_chaos_matrix[index];
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        app::transfer_config config = secure_config();
        config.mode = mode;
        s.apply(config);
        config.forward_faults.seed = seed;
        config.reverse_faults.seed = seed + 100;
        config.request_forward_faults.seed = seed + 200;
        config.request_reverse_faults.seed = seed + 300;

        const auto result = app::run_transfer_native<aead_cipher>(config);
        if (result.completed) {
            EXPECT_TRUE(result.verified) << s.name << " seed " << seed;
        } else {
            EXPECT_TRUE(result.recovery.gave_up) << s.name << " seed " << seed;
            EXPECT_GT(result.recovery.rpc_retries, 0u)
                << s.name << " seed " << seed;
            EXPECT_LT(result.elapsed_us, config.deadline_us)
                << s.name << " seed " << seed;
        }
        // Anything a corrupted trailer or body provoked was an *explicit*
        // rejection: a tag/epoch counter ticked, the data never did.
        if (result.completed) {
            EXPECT_TRUE(result.verified) << s.name << " seed " << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlans, RekeyChaosMatrix,
    ::testing::Combine(::testing::Range(0, 7),
                       ::testing::Values(app::path_mode::ilp,
                                         app::path_mode::layered)),
    [](const ::testing::TestParamInfo<std::tuple<int, app::path_mode>>& p) {
        return std::string(rekey_chaos_matrix[std::get<0>(p.param)].name) +
               (std::get<1>(p.param) == app::path_mode::ilp ? "_ilp"
                                                            : "_layered");
    });

// ---------------------------------------------------------------------------
// Fleet determinism with staggered rekeying

engine::fleet_config secure_fleet_config(std::uint32_t shards,
                                         bool threaded = false) {
    engine::fleet_config cfg;
    cfg.flows = 40;
    cfg.shards = shards;
    cfg.threaded = threaded;
    cfg.defaults.file_bytes = 8 * 1024;
    cfg.defaults.packet_wire_bytes = 512;
    cfg.defaults.secure = true;
    cfg.per_flow = [](std::uint32_t f, engine::flow_config& fc) {
        // Staggered rekey cadence, plus bursty loss on a quarter of the
        // flows so retransmits cross rekey boundaries.
        fc.rekey_interval_bytes = 1024 + 512 * (f % 4);
        if (f % 4 == 0) {
            fc.forward_faults.burst.enabled = true;
            fc.forward_faults.burst.p_good_to_bad = 0.05;
            fc.forward_faults.burst.p_bad_to_good = 0.3;
            fc.forward_faults.burst.bad_loss = 1.0;
        }
    };
    return cfg;
}

TEST(SecureFleet, StaggeredRekeyFlowsAllEndExplicitly) {
    const engine::fleet_report report =
        engine::run_fleet_native<aead_cipher>(secure_fleet_config(4));
    ASSERT_EQ(report.flows.size(), 40u);
    std::uint64_t total_rekeys = 0;
    for (const engine::flow_outcome& o : report.flows) {
        const int flags = (o.completed ? 1 : 0) + (o.gave_up ? 1 : 0) +
                          (o.deadline_exceeded ? 1 : 0) +
                          (o.request_rejected ? 1 : 0) +
                          (o.ports_exhausted ? 1 : 0);
        EXPECT_EQ(flags, 1) << "flow " << o.flow_id;
        if (o.completed) {
            EXPECT_TRUE(o.verified) << "flow " << o.flow_id;
        }
        EXPECT_EQ(o.tag_failures, 0u) << "flow " << o.flow_id;
        EXPECT_EQ(o.epoch_skews, 0u) << "flow " << o.flow_id;
        total_rekeys += o.rekeys;
    }
    EXPECT_GT(total_rekeys, 40u);  // every flow rekeyed at least once
    EXPECT_EQ(report.metrics.counter("engine.crypto.rekeys"), total_rekeys);
}

TEST(SecureFleet, SameSeedSameDigestWithRekeying) {
    const auto a = engine::run_fleet_native<aead_cipher>(secure_fleet_config(2));
    const auto b = engine::run_fleet_native<aead_cipher>(secure_fleet_config(2));
    EXPECT_EQ(a.digest(), b.digest());
}

TEST(SecureFleet, ShardCountDoesNotChangeSecureOutcomes) {
    const auto one = engine::run_fleet_native<aead_cipher>(secure_fleet_config(1));
    const auto four =
        engine::run_fleet_native<aead_cipher>(secure_fleet_config(4));
    EXPECT_EQ(one.digest(), four.digest());
}

TEST(SecureFleet, ThreadedShardsMatchSerialWithRekeying) {
    const auto serial =
        engine::run_fleet_native<aead_cipher>(secure_fleet_config(4, false));
    const auto threaded =
        engine::run_fleet_native<aead_cipher>(secure_fleet_config(4, true));
    EXPECT_EQ(serial.digest(), threaded.digest());
}

}  // namespace
}  // namespace ilp
