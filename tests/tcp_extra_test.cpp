// Additional TCP edge-case tests: sequence-number wraparound across a
// transfer, hostile/malformed input on both the data and ACK paths, window
// clamping, and the incremental checksum update helper.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "checksum/internet_checksum.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "tcp/connection.h"
#include "tcp/header.h"
#include "util/rng.h"

namespace ilp::tcp {
namespace {

using memsim::direct_memory;

// Minimal pair of endpoints over a duplex link with a trivial data path.
struct pair {
    virtual_clock clock;
    net::duplex_link link;
    tcp_sender<direct_memory> sender;
    tcp_receiver<direct_memory> receiver;
    std::vector<std::vector<std::byte>> delivered;
    std::vector<std::byte> pending;

    explicit pair(connection_config cfg)
        : link(clock, 100),
          sender(direct_memory{}, clock, link.forward(), cfg),
          receiver(direct_memory{}, clock, link.reverse(), mirrored(cfg)) {
        link.forward().set_receiver(
            [this](std::span<const std::byte> p) { receiver.on_packet(p); });
        link.reverse().set_receiver(
            [this](std::span<const std::byte> p) { sender.on_ack_packet(p); });
        receiver.set_processor([this](std::span<std::byte> payload) {
            checksum::inet_accumulator acc;
            acc.add_bytes(direct_memory{}, payload, 2);
            pending.assign(payload.begin(), payload.end());
            return rx_process_result{acc.folded(), true};
        });
        receiver.set_accept_handler(
            [this](std::size_t) { delivered.push_back(pending); });
    }

    bool send(const std::vector<std::byte>& message) {
        return sender.send_message(message.size(), [&](const ring_span& dst) {
            std::memcpy(dst.first.data(), message.data(), dst.first.size());
            if (!dst.second.empty()) {
                std::memcpy(dst.second.data(),
                            message.data() + dst.first.size(),
                            dst.second.size());
            }
            return std::optional<std::uint16_t>();
        });
    }

    void settle(sim_time max_us = 10'000'000) {
        const sim_time deadline = clock.now() + max_us;
        while (!sender.idle() && !sender.failed() && clock.now() < deadline) {
            clock.advance(500);
        }
    }
};

std::vector<std::byte> message(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng r(seed);
    r.fill(v);
    return v;
}

TEST(TcpWraparound, SequenceSpaceWrapsMidTransfer) {
    // Start close enough to 2^32 that sequence numbers wrap during the
    // transfer; every comparison must stay correct.
    connection_config cfg;
    cfg.initial_seq = 0xffffff00u;
    pair p(cfg);
    std::vector<std::vector<std::byte>> sent;
    for (int i = 0; i < 20; ++i) {
        sent.push_back(message(200, 900 + i));  // crosses the wrap quickly
        ASSERT_TRUE(p.send(sent.back())) << i;
        p.clock.advance(500);
    }
    p.settle();
    EXPECT_TRUE(p.sender.idle());
    EXPECT_LT(p.sender.next_seq(), 0x00010000u);  // wrapped past zero
    ASSERT_EQ(p.delivered.size(), sent.size());
    for (std::size_t i = 0; i < sent.size(); ++i) {
        EXPECT_EQ(p.delivered[i], sent[i]);
    }
}

TEST(TcpHostile, RuntAndAlienPacketsAreCountedNotCrashing) {
    connection_config cfg;
    pair p(cfg);
    // Runt: shorter than a TCP header.
    const std::byte runt[7] = {};
    p.receiver.on_packet({runt, 7});
    // Alien ports.
    header_fields h;
    h.src_port = 9999;
    h.dst_port = 8888;
    std::byte alien[header_bytes];
    serialize_header(h, alien);
    p.receiver.on_packet({alien, header_bytes});
    EXPECT_EQ(p.receiver.stats().header_failures, 2u);
    EXPECT_EQ(p.receiver.stats().messages_accepted, 0u);
}

TEST(TcpHostile, AckPathRejectsForgeries) {
    connection_config cfg;
    pair p(cfg);
    ASSERT_TRUE(p.send(message(100, 1)));

    // A forged ACK with a bad checksum must not advance the sender.
    header_fields h;
    h.src_port = cfg.remote_port;
    h.dst_port = cfg.local_port;
    h.ack = p.sender.next_seq();
    h.control = flags::ack;
    h.checksum = 0xbeef;  // wrong
    std::byte forged[header_bytes];
    serialize_header(h, forged);
    p.sender.on_ack_packet({forged, header_bytes});
    EXPECT_EQ(p.sender.stats().bad_acks, 1u);
    EXPECT_FALSE(p.sender.idle());  // still unacknowledged

    p.settle();
    EXPECT_TRUE(p.sender.idle());  // the genuine ACK eventually lands
}

TEST(TcpHostile, CorruptedLengthFieldInPayloadIsRejectedByChecksum) {
    // The receiver's processor runs before the checksum verdict; a packet
    // whose payload was altered in flight must be dropped in the final
    // stage even though the processor already touched it.
    net::fault_config faults;
    faults.corrupt_probability = 1.0;
    faults.seed = 9;
    connection_config cfg;
    cfg.rto_us = 5'000;
    cfg.max_retries = 2;

    virtual_clock clock;
    net::duplex_link link(clock, 100, faults);
    tcp_sender<direct_memory> sender(direct_memory{}, clock, link.forward(),
                                     cfg);
    tcp_receiver<direct_memory> receiver(direct_memory{}, clock,
                                         link.reverse(), mirrored(cfg));
    int accepted = 0;
    link.forward().set_receiver(
        [&](std::span<const std::byte> p) { receiver.on_packet(p); });
    link.reverse().set_receiver(
        [&](std::span<const std::byte> p) { sender.on_ack_packet(p); });
    receiver.set_processor([&](std::span<std::byte> payload) {
        checksum::inet_accumulator acc;
        acc.add_bytes(direct_memory{}, payload, 2);
        return rx_process_result{acc.folded(), true};
    });
    receiver.set_accept_handler([&](std::size_t) { ++accepted; });

    const auto msg = message(128, 2);
    ASSERT_TRUE(sender.send_message(msg.size(), [&](const ring_span& dst) {
        std::memcpy(dst.first.data(), msg.data(), dst.first.size());
        return std::optional<std::uint16_t>();
    }));
    // Every copy is corrupted; the sender exhausts its retries.
    for (int i = 0; i < 100 && !sender.failed(); ++i) clock.advance(5'000);
    EXPECT_TRUE(sender.failed());
    EXPECT_EQ(accepted, 0);
    EXPECT_GT(receiver.stats().checksum_failures, 0u);
}

// Crafts a header-only control packet addressed to `pair`'s receiver
// (src 10.0.0.1:5001 -> dst 10.0.0.2:5002 after mirroring); when
// `good_checksum`, the RFC 793 pseudo-header checksum is filled in.
std::vector<std::byte> control_packet(header_fields h, bool good_checksum) {
    std::vector<std::byte> pkt(header_bytes);
    serialize_header(h, pkt);
    if (good_checksum) {
        const std::uint16_t c =
            finish_segment_checksum(0x0a000001, 0x0a000002, pkt, 0, 0);
        store_be16(pkt.data() + 16, c);
    }
    return pkt;
}

TEST(TcpHostile, ValidRstTearsDownAndIsCounted) {
    connection_config cfg;
    pair p(cfg);
    bool failed = false;
    p.receiver.set_failure_handler([&] { failed = true; });

    header_fields h;
    h.src_port = cfg.local_port;
    h.dst_port = cfg.remote_port;
    h.control = flags::rst;
    p.receiver.on_packet(control_packet(h, /*good_checksum=*/true));

    EXPECT_EQ(p.receiver.stats().rsts_received, 1u);
    EXPECT_EQ(p.receiver.stats().bad_rsts, 0u);
    EXPECT_TRUE(p.receiver.peer_failed());
    EXPECT_TRUE(failed);
}

TEST(TcpHostile, RstCarryingPayloadIsBadRstNotTeardown) {
    // A corrupted data segment whose header happens to show the RST bit
    // must not tear the connection down: genuine RSTs never carry payload.
    connection_config cfg;
    pair p(cfg);
    bool failed = false;
    p.receiver.set_failure_handler([&] { failed = true; });

    header_fields h;
    h.src_port = cfg.local_port;
    h.dst_port = cfg.remote_port;
    h.control = flags::rst;
    std::vector<std::byte> pkt = control_packet(h, /*good_checksum=*/true);
    pkt.resize(header_bytes + 4, std::byte{0xab});  // bogus payload
    p.receiver.on_packet(pkt);

    EXPECT_EQ(p.receiver.stats().rsts_received, 0u);
    EXPECT_EQ(p.receiver.stats().bad_rsts, 1u);
    EXPECT_FALSE(p.receiver.peer_failed());
    EXPECT_FALSE(failed);

    // The connection is still alive and transfers normally.
    ASSERT_TRUE(p.send(message(64, 8)));
    p.settle();
    EXPECT_TRUE(p.sender.idle());
    EXPECT_EQ(p.delivered.size(), 1u);
}

TEST(TcpHostile, RstWithBadChecksumIsBadRstNotTeardown) {
    connection_config cfg;
    pair p(cfg);
    bool failed = false;
    p.receiver.set_failure_handler([&] { failed = true; });

    header_fields h;
    h.src_port = cfg.local_port;
    h.dst_port = cfg.remote_port;
    h.control = flags::rst;
    h.checksum = 0xbeef;  // wrong
    p.receiver.on_packet(control_packet(h, /*good_checksum=*/false));

    EXPECT_EQ(p.receiver.stats().rsts_received, 0u);
    EXPECT_EQ(p.receiver.stats().bad_rsts, 1u);
    EXPECT_FALSE(p.receiver.peer_failed());
    EXPECT_FALSE(failed);
}

TEST(TcpSequence, HalfSpaceBoundaryClassifiesAsFuture) {
    // The classification window: seq exactly 2^31 behind/ahead of rcv_nxt.
    // seq_lt's trichotomy is incoherent at distance 2^31 (both directions
    // compare "less"); seq_behind pins that distance to the future side, so
    // an exactly-opposite sequence number is an out-of-order drop, not a
    // duplicate.
    connection_config cfg;  // initial_seq = 0 -> receiver expects seq 0
    pair p(cfg);

    header_fields h;
    h.src_port = cfg.local_port;
    h.dst_port = cfg.remote_port;
    h.control = flags::ack;

    h.seq = 0x80000000u;  // distance exactly 2^31: future, not duplicate
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().out_of_order_drops, 1u);
    EXPECT_EQ(p.receiver.stats().duplicate_drops, 0u);

    h.seq = 0x80000001u;  // one past the boundary: maximally old duplicate
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().duplicate_drops, 1u);

    h.seq = 0x7fffffffu;  // one before the boundary: far-future segment
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().out_of_order_drops, 2u);

    h.seq = 0xffffffffu;  // just behind rcv_nxt across the wrap: duplicate
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().duplicate_drops, 2u);

    EXPECT_EQ(p.receiver.stats().messages_accepted, 0u);
}

TEST(TcpSequence, BoundaryClassificationHoldsAwayFromZero) {
    connection_config cfg;
    cfg.initial_seq = 0xdeadbeefu;
    pair p(cfg);

    header_fields h;
    h.src_port = cfg.local_port;
    h.dst_port = cfg.remote_port;
    h.control = flags::ack;

    h.seq = cfg.initial_seq + 0x80000000u;  // distance 2^31: future
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().out_of_order_drops, 1u);

    h.seq = cfg.initial_seq - 0x7fffffffu;  // 2^31-1 behind: duplicate
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().duplicate_drops, 1u);

    h.seq = cfg.initial_seq - 1u;  // immediately behind: duplicate
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().duplicate_drops, 2u);

    h.seq = cfg.initial_seq + 1u;  // immediately ahead: future
    p.receiver.on_packet(control_packet(h, true));
    EXPECT_EQ(p.receiver.stats().out_of_order_drops, 2u);
}

TEST(TcpWindow, AdvertisedWindowIsClampedTo16Bits) {
    connection_config cfg;
    cfg.recv_window_bytes = 1 << 20;  // larger than a 16-bit window
    pair p(cfg);
    ASSERT_TRUE(p.send(message(64, 3)));
    p.settle();
    EXPECT_TRUE(p.sender.idle());  // clamped window still works
}

TEST(TcpSender, MessageLargerThanWindowIsRefusedNotWedged) {
    connection_config cfg;
    cfg.send_buffer_bytes = 1024;
    cfg.recv_window_bytes = 1024;
    pair p(cfg);
    EXPECT_FALSE(p.send(message(2048, 4)));
    EXPECT_EQ(p.sender.stats().send_blocked, 1u);
    // The sender remains usable.
    EXPECT_TRUE(p.send(message(512, 5)));
    p.settle();
    EXPECT_TRUE(p.sender.idle());
}

TEST(InetChecksumUpdate, Rfc1624Identity) {
    // Recompute vs incrementally update a checksum when one word changes.
    rng r(6);
    std::vector<std::byte> data(64);
    r.fill(data);
    const std::uint16_t before = checksum::inet_checksum(data);

    const std::size_t word_at = 10;
    const std::uint16_t old_word = load_be16(data.data() + word_at);
    const std::uint16_t new_word = 0x1234;
    store_be16(data.data() + word_at, new_word);
    const std::uint16_t recomputed = checksum::inet_checksum(data);
    const std::uint16_t updated =
        checksum::inet_checksum_update(before, old_word, new_word);
    EXPECT_EQ(recomputed, updated);
}

TEST(InetChecksumUpdate, ChainOfUpdatesStaysConsistent) {
    rng r(7);
    std::vector<std::byte> data(128);
    r.fill(data);
    std::uint16_t field = checksum::inet_checksum(data);
    for (int i = 0; i < 32; ++i) {
        const std::size_t at = 2 * r.next_below(64);
        const std::uint16_t old_word = load_be16(data.data() + at);
        const std::uint16_t new_word = static_cast<std::uint16_t>(r.next_u32());
        store_be16(data.data() + at, new_word);
        field = checksum::inet_checksum_update(field, old_word, new_word);
    }
    EXPECT_EQ(field, checksum::inet_checksum(data));
}

}  // namespace
}  // namespace ilp::tcp
