// Tests for the observability subsystem: metrics registry and histograms,
// the span tracer (ring wraparound, nesting, memsim attribution), the BENCH
// JSON schema writer and the Chrome trace_event exporter (golden file).
//
// The central invariant (ISSUE 4): per-span *self* attribution, summed over
// every span of one side, reproduces the attributed memory system's run
// totals exactly — no access is double-counted by nesting and none is lost.
#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "app/harness.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "memsim/memory_system.h"
#include "obs/bench_json.h"
#include "obs/export_chrome.h"
#include "obs/export_text.h"
#include "obs/registry.h"
#include "obs/tracer.h"
#include "util/json.h"
#include "util/virtual_clock.h"

namespace ilp {
namespace {

// With ILP_OBS=OFF the instrumentation macros compile to nothing; the
// registry/JSON/exporter machinery still works, but no spans are recorded.
#if ILP_OBS_ENABLED
constexpr bool obs_compiled_in = true;
#else
constexpr bool obs_compiled_in = false;
#endif
#define ILP_OBS_REQUIRED() \
    if (!obs_compiled_in) GTEST_SKIP() << "built with ILP_OBS=OFF"

// ---------------------------------------------------------------- registry

TEST(Histogram, RecordsAndInterpolatesPercentiles) {
    obs::histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_DOUBLE_EQ(h.percentile(99), 0.0);
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.count(), 100u);
    EXPECT_EQ(h.sum(), 5050u);
    EXPECT_EQ(h.min(), 1u);
    EXPECT_EQ(h.max(), 100u);
    EXPECT_DOUBLE_EQ(h.mean(), 50.5);
    // Log buckets: the percentile is interpolated, so demand the right
    // bucket, not the exact rank.
    EXPECT_GE(h.percentile(99), 64.0);
    EXPECT_LE(h.percentile(99), 128.0);
    EXPECT_LE(h.percentile(10), h.percentile(90));
}

TEST(Histogram, HugeValuesClampToLastBucket) {
    obs::histogram h;
    h.record(~std::uint64_t{0});
    h.record(std::uint64_t{1} << 63);
    EXPECT_EQ(h.count(), 2u);
    EXPECT_EQ(h.max(), ~std::uint64_t{0});
    EXPECT_EQ(h.buckets()[obs::histogram::bucket_count - 1], 2u);
}

TEST(Histogram, MergeSumsBuckets) {
    obs::histogram a, b;
    a.record(3);
    b.record(5);
    b.record(1000);
    a += b;
    EXPECT_EQ(a.count(), 3u);
    EXPECT_EQ(a.sum(), 1008u);
    EXPECT_EQ(a.min(), 3u);
    EXPECT_EQ(a.max(), 1000u);
}

TEST(Registry, CountersAreCumulative) {
    obs::registry r;
    EXPECT_EQ(r.counter("absent"), 0u);
    r.add("tcp.segments");
    r.add("tcp.segments", 4);
    EXPECT_EQ(r.counter("tcp.segments"), 5u);
    r.set_gauge("goodput_mbps", 1.5);
    EXPECT_DOUBLE_EQ(r.gauge("goodput_mbps"), 1.5);
    r.hist("latency_us").record(7);
    ASSERT_NE(r.find_hist("latency_us"), nullptr);
    EXPECT_EQ(r.find_hist("latency_us")->count(), 1u);
    EXPECT_EQ(r.find_hist("absent"), nullptr);
}

TEST(Registry, MergeSumsCountersAndHistograms) {
    obs::registry a, b;
    a.add("n", 2);
    b.add("n", 3);
    b.add("only_b");
    a.hist("h").record(1);
    b.hist("h").record(9);
    a.merge(b);
    EXPECT_EQ(a.counter("n"), 5u);
    EXPECT_EQ(a.counter("only_b"), 1u);
    EXPECT_EQ(a.find_hist("h")->count(), 2u);
}

// -------------------------------------------------------------- BENCH JSON

TEST(BenchJson, RendersValidSchemaV2) {
    obs::bench_report report("unit");
    report.meta("cipher", "none");
    report.metric("throughput", 42.5, "mbps",
                  obs::direction::higher_is_better);
    obs::histogram h;
    h.record(10);
    h.record(20);
    report.histogram_metric("latency_us", h, "us");

    const auto doc = json::parse(report.render());
    ASSERT_TRUE(doc.has_value());
    EXPECT_DOUBLE_EQ(doc->number_at("schema_version"), 2.0);
    EXPECT_EQ(doc->string_at("bench"), "unit");
    EXPECT_EQ(doc->find("meta")->string_at("cipher"), "none");

    const json::array* metrics = doc->find("metrics")->as_array();
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->size(), 2u);  // throughput + latency_us.p99 gate
    EXPECT_EQ((*metrics)[0].string_at("name"), "throughput");
    EXPECT_EQ((*metrics)[0].string_at("better"), "higher");
    EXPECT_EQ((*metrics)[1].string_at("name"), "latency_us.p99");
    EXPECT_EQ((*metrics)[1].string_at("better"), "lower");

    const json::array* hists = doc->find("histograms")->as_array();
    ASSERT_NE(hists, nullptr);
    ASSERT_EQ(hists->size(), 1u);
    EXPECT_DOUBLE_EQ((*hists)[0].number_at("count"), 2.0);
    EXPECT_DOUBLE_EQ((*hists)[0].number_at("min"), 10.0);
    EXPECT_DOUBLE_EQ((*hists)[0].number_at("max"), 20.0);
}

// ------------------------------------------------------------------ tracer

TEST(Tracer, MacrosAreSafeWithNoTracerInstalled) {
    ASSERT_EQ(obs::tracer::current(), nullptr);
    ILP_OBS_SPAN("test", "noop");
    ILP_OBS_ATTR("nobody", nullptr);
    ILP_OBS_INSTANT("test", "noop");
}

TEST(Tracer, RingWrapsButStageTotalsNeverDrop) {
    ILP_OBS_REQUIRED();
    obs::tracer t(4);
    obs::tracer* prev = obs::tracer::install(&t);
    for (int i = 0; i < 6; ++i) ILP_OBS_INSTANT("test", "tick");
    obs::tracer::install(prev);

    EXPECT_EQ(t.capacity(), 4u);
    EXPECT_EQ(t.recorded(), 6u);
    EXPECT_EQ(t.dropped(), 2u);
    const auto events = t.events();
    ASSERT_EQ(events.size(), 4u);
    // Oldest surviving first: seq 2, 3, 4, 5.
    for (std::size_t i = 0; i < events.size(); ++i) {
        EXPECT_EQ(events[i].seq, i + 2);
    }
    // The aggregate side never loses wrapped events.
    const auto it = t.stages().find(obs::stage_key{"", "test", "tick"});
    ASSERT_NE(it, t.stages().end());
    EXPECT_EQ(it->second.count, 6u);
}

TEST(Tracer, NestedSpansSplitTimeIntoSelfAndChildren) {
    ILP_OBS_REQUIRED();
    virtual_clock clock;
    obs::tracer t;
    t.set_clock(&clock);
    obs::tracer* prev = obs::tracer::install(&t);
    {
        ILP_OBS_SPAN("test", "outer");
        clock.advance(10);
        {
            ILP_OBS_SPAN("test", "inner");
            clock.advance(5);
        }
        clock.advance(3);
    }
    obs::tracer::install(prev);

    const auto events = t.events();
    ASSERT_EQ(events.size(), 2u);  // inner closes first
    const obs::span& inner = events[0];
    const obs::span& outer = events[1];
    EXPECT_STREQ(inner.name, "inner");
    EXPECT_EQ(inner.begin_us, 10u);
    EXPECT_EQ(inner.end_us, 15u);
    EXPECT_EQ(inner.self_us, 5u);
    EXPECT_EQ(inner.depth, 1u);
    EXPECT_STREQ(outer.name, "outer");
    EXPECT_EQ(outer.end_us - outer.begin_us, 18u);
    EXPECT_EQ(outer.self_us, 13u);  // 18 minus the inner span's 5
    EXPECT_EQ(outer.depth, 0u);
}

TEST(Tracer, NestedSpansAttributeMemoryWithoutDoubleCounting) {
    ILP_OBS_REQUIRED();
    memsim::memory_system sys(memsim::test_tiny());
    const memsim::sim_memory mem(sys);
    std::byte buf[64] = {};

    obs::tracer t;
    obs::tracer* prev = obs::tracer::install(&t);
    {
        ILP_OBS_ATTR("client", &sys);
        ILP_OBS_SPAN("test", "outer");
        mem.store_u32(buf, 1);  // outer self: 1 write
        {
            ILP_OBS_SPAN("test", "inner");
            (void)mem.load_u32(buf);  // inner self: 1 read
            mem.store_u32(buf + 8, 2);
        }
        (void)mem.load_u32(buf + 8);  // outer self: 1 read
    }
    obs::tracer::install(prev);

    const auto events = t.events();
    ASSERT_EQ(events.size(), 2u);
    const obs::span& inner = events[0];
    const obs::span& outer = events[1];
    EXPECT_STREQ(inner.side, "client");
    EXPECT_EQ(inner.incl.reads, 1u);
    EXPECT_EQ(inner.incl.writes, 1u);
    EXPECT_EQ(inner.self, inner.incl);  // no children
    EXPECT_EQ(outer.incl.reads, 2u);
    EXPECT_EQ(outer.incl.writes, 2u);
    EXPECT_EQ(outer.self.reads, 1u);   // inner's read subtracted
    EXPECT_EQ(outer.self.writes, 1u);  // inner's write subtracted

    // Self totals over the side reproduce the memory system's run totals.
    const obs::mem_counters totals = t.side_self_totals("client");
    EXPECT_EQ(totals, obs::sample_counters(sys));
}

TEST(Tracer, AttributionFollowsTheScopedSide) {
    ILP_OBS_REQUIRED();
    memsim::memory_system client_sys(memsim::test_tiny());
    memsim::memory_system server_sys(memsim::test_tiny());
    const memsim::sim_memory client_mem(client_sys);
    const memsim::sim_memory server_mem(server_sys);
    std::byte buf[16] = {};

    obs::tracer t;
    obs::tracer* prev = obs::tracer::install(&t);
    {
        ILP_OBS_ATTR("client", &client_sys);
        ILP_OBS_SPAN("test", "work");
        client_mem.store_u32(buf, 1);
        {
            // Nested different-source span: charged to the server side,
            // not transferred to the client parent's children.
            ILP_OBS_ATTR("server", &server_sys);
            ILP_OBS_SPAN("test", "work");
            server_mem.store_u32(buf + 8, 2);
        }
    }
    obs::tracer::install(prev);

    EXPECT_EQ(t.side_self_totals("client"),
              obs::sample_counters(client_sys));
    EXPECT_EQ(t.side_self_totals("server"),
              obs::sample_counters(server_sys));
    EXPECT_EQ(t.side_self_totals("client").writes, 1u);
    EXPECT_EQ(t.side_self_totals("server").writes, 1u);
}

// The flagship invariant over the real stack: a full simulated transfer,
// every client/server memory access inside attributed spans, and the
// per-stage self totals summing exactly to each side's run totals.
TEST(Tracer, TransferSelfAttributionSumsExactlyToMemorySystemTotals) {
    ILP_OBS_REQUIRED();
    app::transfer_config config;
    config.file_bytes = 4 * 1024;
    config.packet_wire_bytes = 1024;
    memsim::memory_system client(memsim::supersparc_with_l2());
    memsim::memory_system server(memsim::supersparc_with_l2());

    obs::tracer t(1 << 14);
    obs::tracer* prev = obs::tracer::install(&t);
    const auto result = app::run_transfer_simulated<crypto::safer_simplified>(
        config, client, server);
    obs::tracer::install(prev);

    ASSERT_TRUE(result.completed);
    ASSERT_TRUE(result.verified);
    EXPECT_EQ(t.dropped(), 0u);

    const obs::mem_counters client_spans = t.side_self_totals("client");
    const obs::mem_counters server_spans = t.side_self_totals("server");
    EXPECT_EQ(client_spans, obs::sample_counters(client));
    EXPECT_EQ(server_spans, obs::sample_counters(server));
    // And they are real numbers, not an empty-equals-empty pass.
    EXPECT_GT(client_spans.accesses(), 1000u);
    EXPECT_GT(server_spans.accesses(), 1000u);
    EXPECT_GT(client_spans.l1d_misses, 0u);

    // The breakdown covers the whole stack: app, tcp and net stages exist
    // on both sides.
    const auto has_stage = [&](const char* side, const char* category) {
        for (const auto& [key, totals] : t.stages()) {
            if (key.side == side && key.category == category) return true;
        }
        return false;
    };
    for (const char* side : {"client", "server"}) {
        EXPECT_TRUE(has_stage(side, "app")) << side;
        EXPECT_TRUE(has_stage(side, "tcp")) << side;
        EXPECT_TRUE(has_stage(side, "net")) << side;
    }

    // The text exporter renders every stage row.
    const std::string table = obs::stage_summary(t);
    EXPECT_NE(table.find("fused_part"), std::string::npos);
    EXPECT_NE(table.find("segmentize"), std::string::npos);
}

// --------------------------------------------------------- chrome exporter

obs::tracer make_golden_tracer(virtual_clock& clock) {
    obs::tracer t(8);
    t.set_clock(&clock);
    obs::tracer* prev = obs::tracer::install(&t);
    {
        ILP_OBS_ATTR("client", nullptr);
        ILP_OBS_SPAN("app", "send");
        clock.advance(4);
        {
            ILP_OBS_SPAN("tcp", "segmentize");
            clock.advance(2);
        }
        ILP_OBS_INSTANT("net", "drop_random");
        clock.advance(1);
    }
    obs::tracer::install(prev);
    return t;
}

TEST(ChromeExport, MatchesGoldenFile) {
    ILP_OBS_REQUIRED();
    virtual_clock clock;
    const obs::tracer t = make_golden_tracer(clock);
    const std::string rendered = obs::chrome_trace_json(t);

    const std::string golden_path =
        std::string(GOLDEN_DIR) + "/chrome_trace.json";
    std::FILE* f = std::fopen(golden_path.c_str(), "rb");
    ASSERT_NE(f, nullptr) << "missing golden file " << golden_path;
    std::string golden;
    char buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) golden.append(buf, n);
    std::fclose(f);
    // The golden file ends with a newline (text file); the renderer's
    // output does not.
    if (!golden.empty() && golden.back() == '\n') golden.pop_back();

    EXPECT_EQ(rendered, golden)
        << "Chrome exporter output changed.  If intentional, regenerate "
           "tests/golden/chrome_trace.json (the test prints the new "
           "output below).\n"
        << rendered;
}

TEST(ChromeExport, IsValidJsonWithExpectedStructure) {
    ILP_OBS_REQUIRED();
    virtual_clock clock;
    const obs::tracer t = make_golden_tracer(clock);
    const auto doc = json::parse(obs::chrome_trace_json(t));
    ASSERT_TRUE(doc.has_value());
    const json::array* events = doc->find("traceEvents")->as_array();
    ASSERT_NE(events, nullptr);
    // 2 thread_name metadata records + 2 spans + 1 instant.
    ASSERT_EQ(events->size(), 5u);
    EXPECT_EQ((*events)[0].string_at("ph"), "M");
    int spans = 0, instants = 0;
    for (const auto& e : *events) {
        const std::string ph = e.string_at("ph");
        if (ph == "X") {
            ++spans;
            EXPECT_NE(e.find("dur"), nullptr);
            EXPECT_NE(e.find("args")->find("self_accesses"), nullptr);
        } else if (ph == "i") {
            ++instants;
        }
    }
    EXPECT_EQ(spans, 2);
    EXPECT_EQ(instants, 1);
    EXPECT_DOUBLE_EQ(doc->find("otherData")->number_at("dropped_events"),
                     0.0);
}

}  // namespace
}  // namespace ilp
