// Additional memory-simulator tests: write-back hierarchies, writeback
// charging, histogram arithmetic, and cost-model invariants.
#include <gtest/gtest.h>

#include "memsim/access.h"
#include "memsim/cache.h"
#include "memsim/configs.h"
#include "memsim/memory_system.h"

namespace ilp::memsim {
namespace {

memory_system_config write_back_l1() {
    memory_system_config cfg = test_tiny();
    cfg.l1d.writes = write_policy::write_back;
    cfg.l1d.write_misses = write_miss_policy::allocate;
    return cfg;
}

TEST(AccessHistogram, ArithmeticAndBytes) {
    access_histogram h;
    h.accesses[size_bucket(1)] = 10;
    h.accesses[size_bucket(4)] = 5;
    h.accesses[size_bucket(8)] = 2;
    h.misses[size_bucket(4)] = 3;
    EXPECT_EQ(h.total_accesses(), 17u);
    EXPECT_EQ(h.total_misses(), 3u);
    EXPECT_EQ(h.total_bytes(), 10u + 20 + 16);

    access_histogram other;
    other.accesses[size_bucket(1)] = 1;
    h += other;
    EXPECT_EQ(h.accesses[size_bucket(1)], 11u);
}

TEST(AccessStats, MissRatioAndAccumulate) {
    access_stats s;
    s.reads.accesses[size_bucket(4)] = 80;
    s.reads.misses[size_bucket(4)] = 8;
    s.writes.accesses[size_bucket(4)] = 20;
    s.writes.misses[size_bucket(4)] = 2;
    EXPECT_DOUBLE_EQ(s.miss_ratio(), 0.1);

    access_stats zero;
    EXPECT_DOUBLE_EQ(zero.miss_ratio(), 0.0);

    access_stats sum;
    sum += s;
    sum += s;
    EXPECT_EQ(sum.total_accesses(), 200u);
}

TEST(SizeBuckets, MappingAndWidths) {
    EXPECT_EQ(size_bucket(1), 0u);
    EXPECT_EQ(size_bucket(2), 1u);
    EXPECT_EQ(size_bucket(3), 2u);  // rounds up into the 4-byte bucket
    EXPECT_EQ(size_bucket(4), 2u);
    EXPECT_EQ(size_bucket(8), 3u);
    EXPECT_EQ(size_bucket(16), 3u);  // clamped
    EXPECT_EQ(bucket_bytes(0), 1u);
    EXPECT_EQ(bucket_bytes(3), 8u);
}

TEST(WriteBackCache, DirtyEvictionChargesWriteback) {
    memory_system sys(write_back_l1());
    // Dirty a line, then evict it with a conflicting read.
    sys.write(0, 8);  // allocate + dirty (miss -> memory fetch)
    const std::uint64_t after_write = sys.cycles();
    sys.read(64, 8);  // 64-byte cache: conflicts with line 0
    const std::uint64_t eviction_cost = sys.cycles() - after_write;
    // The eviction pays the miss fetch AND the dirty writeback.
    const std::uint64_t plain_miss = [&] {
        memory_system fresh(write_back_l1());
        fresh.read(64, 8);
        return fresh.cycles();
    }();
    EXPECT_GT(eviction_cost, plain_miss);
}

TEST(WriteBackCache, WriteHitsAreCheaperThanWriteThrough) {
    memory_system wb(write_back_l1());
    memory_system wt(test_tiny());
    // Warm one line in both.
    wb.write(0, 8);
    wt.read(0, 8);  // fill via read (write-through never fills on write)
    wb.reset(false);
    wt.reset(false);
    for (int i = 0; i < 100; ++i) {
        wb.write(0, 8);
        wt.write(0, 8);
    }
    // Write-back absorbs repeated writes in L1; write-through pays the
    // write buffer every time.
    EXPECT_LT(wb.cycles(), wt.cycles());
}

TEST(MemorySystem, InstructionAndDataCyclesPartition) {
    memory_system sys(test_tiny());
    sys.read(0, 8);
    sys.instruction_fetch(0x1000, 32);
    EXPECT_EQ(sys.cycles(), sys.data_cycles() + sys.instruction_cycles());
    EXPECT_GT(sys.data_cycles(), 0u);
    EXPECT_GT(sys.instruction_cycles(), 0u);
}

TEST(MemorySystem, L2SharedBetweenCodeAndData) {
    // The unified second-level cache serves both misses: an instruction
    // region fetched once is an L2 hit when refetched after L1I eviction.
    memory_system sys(supersparc_with_l2());
    sys.instruction_fetch(0, 32 * 1024);  // sweeps L1I (20 KB)
    const std::uint64_t misses_first = sys.instruction_fetch_misses();
    sys.instruction_fetch(0, 32 * 1024);  // refetch: L1I misses, L2 hits
    EXPECT_GT(sys.instruction_fetch_misses(), misses_first);
    ASSERT_NE(sys.l2(), nullptr);
    EXPECT_GT(sys.l2()->hits(), 0u);
}

TEST(Cache, FiveWaySuperSparcGeometry) {
    // The odd 20 KB / 5-way instruction cache must produce a power-of-two
    // set count and behave associatively.
    cache c(supersparc_with_l2().l1i);
    EXPECT_EQ(c.config().set_count(), 128u);
    // Five conflicting lines fit; the sixth evicts the LRU.
    const std::uint64_t stride = 128 * 32;  // same set each time
    for (int way = 0; way < 5; ++way) {
        EXPECT_FALSE(c.access(way * stride, access_kind::read).hit);
    }
    for (int way = 0; way < 5; ++way) {
        EXPECT_TRUE(c.access(way * stride, access_kind::read).hit);
    }
    EXPECT_FALSE(c.access(5 * stride, access_kind::read).hit);
    EXPECT_FALSE(c.access(0, access_kind::read).hit);  // LRU victim was 0
}

TEST(MemorySystem, CyclesMonotoneInMissPenalty) {
    memory_system_config cheap = supersparc_no_l2();
    memory_system_config dear = supersparc_no_l2();
    dear.timing.memory_cycles = cheap.timing.memory_cycles * 4;
    memory_system a(cheap), b(dear);
    for (std::uint64_t addr = 0; addr < 64 * 1024; addr += 64) {
        a.read(addr, 8);
        b.read(addr, 8);
    }
    EXPECT_EQ(a.data_stats().total_misses(), b.data_stats().total_misses());
    EXPECT_LT(a.cycles(), b.cycles());
}

}  // namespace
}  // namespace ilp::memsim
