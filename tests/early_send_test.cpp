// Tests for the early-manipulation send variant (§3.2.2's alternative):
// wire equivalence with the standard ILP path, correct behaviour under a
// full TCP buffer, and its extra-pass cost accounting.
#include <gtest/gtest.h>

#include <cstring>

#include "app/early_send.h"
#include "app/send_path.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "net/datagram.h"
#include "rpc/messages.h"
#include "util/rng.h"

namespace ilp::app {
namespace {

using memsim::direct_memory;

struct fixture {
    virtual_clock clock;
    net::duplex_link link{clock, 100};
    tcp::connection_config cfg;
    tcp::tcp_sender<direct_memory> sender;
    std::vector<std::vector<std::byte>> wire_packets;

    explicit fixture(std::size_t send_buffer = 16 * 1024)
        : cfg(make_cfg(send_buffer)),
          sender(direct_memory{}, clock, link.forward(), cfg) {
        link.forward().set_receiver([this](std::span<const std::byte> p) {
            wire_packets.emplace_back(p.begin(), p.end());
        });
    }

    static tcp::connection_config make_cfg(std::size_t send_buffer) {
        tcp::connection_config c;
        c.send_buffer_bytes = send_buffer;
        c.recv_window_bytes = send_buffer;
        return c;
    }
};

std::array<std::byte, 8> key() {
    std::array<std::byte, 8> k;
    rng r(1);
    r.fill(k);
    return k;
}

rpc::reply_header header_for(std::uint32_t offset) {
    rpc::reply_header h;
    h.request_id = 1;
    h.offset = offset;
    h.total_bytes = 4096;
    return h;
}

TEST(EarlySend, WireIdenticalToStandardIlpPath) {
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    std::vector<std::byte> payload(500);
    rng r(2);
    r.fill(payload);

    rpc::reply_staging staging1, staging2;
    const auto src1 = rpc::make_reply_source(header_for(0), payload, staging1);
    const auto src2 = rpc::make_reply_source(header_for(0), payload, staging2);
    const auto layout = rpc::layout_reply(payload.size());

    fixture standard;
    path_counters std_counters;
    ASSERT_TRUE(send_message_ilp(standard.sender, direct_memory{}, cipher,
                                 src1, layout.plan, std_counters));
    standard.clock.advance(1000);

    fixture early;
    path_counters early_counters;
    early_sender<direct_memory, crypto::safer_simplified> stage(
        direct_memory{}, cipher, 4096);
    stage.prepare(src2, layout.plan, early_counters);
    ASSERT_TRUE(stage.try_flush(early.sender, early_counters));
    early.clock.advance(1000);

    ASSERT_EQ(standard.wire_packets.size(), 1u);
    ASSERT_EQ(early.wire_packets.size(), 1u);
    EXPECT_EQ(standard.wire_packets[0], early.wire_packets[0]);
}

TEST(EarlySend, ManipulatesWhileBufferFullThenFlushes) {
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    std::vector<std::byte> filler_payload(rpc::max_payload_for_wire(1024));
    rng r(3);
    r.fill(filler_payload);

    // A tiny TCP buffer that the first message fills completely.
    fixture f(1024);
    path_counters counters;
    rpc::reply_staging s1;
    const auto first =
        rpc::make_reply_source(header_for(0), filler_payload, s1);
    ASSERT_TRUE(send_message_ilp(f.sender, direct_memory{}, cipher, first,
                                 rpc::layout_reply(filler_payload.size()).plan,
                                 counters));
    EXPECT_EQ(f.sender.sendable_bytes(), 0u);

    // The second message cannot enter TCP yet — but early manipulation
    // proceeds anyway.
    std::vector<std::byte> payload(64);
    r.fill(payload);
    rpc::reply_staging s2;
    const auto second = rpc::make_reply_source(header_for(900), payload, s2);
    early_sender<direct_memory, crypto::safer_simplified> stage(
        direct_memory{}, cipher, 4096);
    stage.prepare(second, rpc::layout_reply(payload.size()).plan, counters);
    EXPECT_TRUE(stage.has_pending());
    EXPECT_FALSE(stage.try_flush(f.sender, counters));  // still no room
    EXPECT_TRUE(stage.has_pending());

    // An ACK frees the buffer; the pending message flushes without any
    // further manipulation work.
    tcp::header_fields ack;
    ack.src_port = f.cfg.remote_port;
    ack.dst_port = f.cfg.local_port;
    ack.ack = f.sender.next_seq();
    ack.control = tcp::flags::ack;
    ack.window = 0xffff;
    std::byte ack_wire[tcp::header_bytes];
    tcp::serialize_header(ack, ack_wire);
    const std::uint16_t cksum = tcp::finish_segment_checksum(
        f.cfg.remote_addr, f.cfg.local_addr, ack_wire, 0, 0);
    store_be16(ack_wire + 16, cksum);
    f.sender.on_ack_packet({ack_wire, tcp::header_bytes});

    EXPECT_TRUE(stage.try_flush(f.sender, counters));
    EXPECT_FALSE(stage.has_pending());
    f.clock.advance(1000);
    EXPECT_EQ(f.wire_packets.size(), 2u);
}

TEST(EarlySend, CostsOneExtraPass) {
    // Accounting: the early variant's fused loop bytes equal the standard
    // path's, plus a staging->ring copy pass of the same size.
    const auto k = key();
    const crypto::safer_simplified cipher(k);
    std::vector<std::byte> payload(256);
    rng r(4);
    r.fill(payload);
    rpc::reply_staging s1, s2;
    const auto src1 = rpc::make_reply_source(header_for(0), payload, s1);
    const auto src2 = rpc::make_reply_source(header_for(0), payload, s2);
    const auto layout = rpc::layout_reply(payload.size());

    fixture a, b;
    path_counters std_counters, early_counters;
    ASSERT_TRUE(send_message_ilp(a.sender, direct_memory{}, cipher, src1,
                                 layout.plan, std_counters));
    early_sender<direct_memory, crypto::safer_simplified> stage(
        direct_memory{}, cipher, 4096);
    stage.prepare(src2, layout.plan, early_counters);
    ASSERT_TRUE(stage.try_flush(b.sender, early_counters));

    EXPECT_EQ(std_counters.fused_loop_bytes, early_counters.fused_loop_bytes);
    EXPECT_EQ(std_counters.copy_pass_bytes, 0u);
    EXPECT_EQ(early_counters.copy_pass_bytes, layout.wire_bytes);
}

}  // namespace
}  // namespace ilp::app
