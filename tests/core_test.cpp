// Tests for the ILP core: message-part planning, gather/scatter cursors,
// the fused pipeline (including out-of-order part processing and ILP vs.
// layered equivalence), the dynamic pipeline and word filters.
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "buffer/byte_buffer.h"
#include "checksum/internet_checksum.h"
#include "core/dynamic_pipeline.h"
#include "core/fused_pipeline.h"
#include "core/gather.h"
#include "core/layered_path.h"
#include "core/message_plan.h"
#include "core/stage.h"
#include "core/three_stage.h"
#include "core/word_filter.h"
#include "crypto/safer_simplified.h"
#include "crypto/simple_cipher.h"
#include "memsim/configs.h"
#include "util/rng.h"

namespace ilp::core {
namespace {

using checksum::inet_accumulator;
using crypto::safer_simplified;
using memsim::direct_memory;
using memsim::sim_memory;

std::array<std::byte, 8> test_key() {
    std::array<std::byte, 8> key;
    rng r(0xbeef);
    r.fill(key);
    return key;
}

std::vector<std::byte> random_bytes(std::size_t n, std::uint64_t seed) {
    std::vector<std::byte> v(n);
    rng r(seed);
    r.fill(v);
    return v;
}

// ---------------------------------------------------------------------------
// message_plan

TEST(MessagePlan, DegenerateMessageIsOnlyPartA) {
    const message_plan plan = plan_parts(4);  // header only
    EXPECT_EQ(plan.total_bytes, 8u);
    EXPECT_EQ(plan.padding_bytes, 4u);
    EXPECT_EQ(plan.part_a.offset, 0u);
    EXPECT_EQ(plan.part_a.len, 8u);
    EXPECT_TRUE(plan.part_b.empty());
    EXPECT_TRUE(plan.part_c.empty());
}

TEST(MessagePlan, TwoBlockMessageHasEmptyB) {
    const message_plan plan = plan_parts(13);  // pads to 16
    EXPECT_EQ(plan.total_bytes, 16u);
    EXPECT_EQ(plan.padding_bytes, 3u);
    EXPECT_EQ(plan.part_a.len, 8u);
    EXPECT_TRUE(plan.part_b.empty());
    EXPECT_EQ(plan.part_c.offset, 8u);
    EXPECT_EQ(plan.part_c.len, 8u);
}

TEST(MessagePlan, GeneralMessageSplitsAtBetaAndGamma) {
    const message_plan plan = plan_parts(100);  // pads to 104
    EXPECT_EQ(plan.total_bytes, 104u);
    EXPECT_EQ(plan.part_a.offset, 0u);
    EXPECT_EQ(plan.part_a.len, 8u);
    EXPECT_EQ(plan.part_b.offset, 8u);
    EXPECT_EQ(plan.part_b.len, 88u);
    EXPECT_EQ(plan.part_c.offset, 96u);
    EXPECT_EQ(plan.part_c.len, 8u);
    // Parts tile the message exactly.
    EXPECT_EQ(plan.part_a.len + plan.part_b.len + plan.part_c.len,
              plan.total_bytes);
}

TEST(MessagePlan, PartsCoverAllSizesWithoutGaps) {
    for (std::size_t n = 4; n < 600; ++n) {
        const message_plan plan = plan_parts(n);
        EXPECT_EQ(plan.total_bytes % encryption_unit_bytes, 0u);
        EXPECT_GE(plan.total_bytes, n);
        EXPECT_LT(plan.total_bytes - n, encryption_unit_bytes);
        std::vector<bool> covered(plan.total_bytes, false);
        for (const message_part& part : plan.ilp_order()) {
            for (std::size_t i = 0; i < part.len; ++i) {
                EXPECT_FALSE(covered[part.offset + i]) << "n=" << n;
                covered[part.offset + i] = true;
            }
        }
        for (std::size_t i = 0; i < plan.total_bytes; ++i) {
            EXPECT_TRUE(covered[i]) << "n=" << n << " byte " << i;
        }
    }
}

// ---------------------------------------------------------------------------
// gather/scatter

TEST(Gather, FillAppliesSegmentTransforms) {
    const std::uint32_t host_words[2] = {0x01020304u, 0xa0b0c0d0u};
    const auto opaque = random_bytes(8, 1);
    gather_source src;
    src.add({reinterpret_cast<const std::byte*>(host_words), 8},
            segment_op::xdr_words);
    src.add(opaque);
    src.add_zeros(4);
    EXPECT_EQ(src.total_size(), 20u);

    gather_cursor cur(src);
    std::byte out[20];
    cur.fill(direct_memory{}, out, 20);
    // xdr_words produced big-endian words.
    EXPECT_EQ(std::to_integer<int>(out[0]), 0x01);
    EXPECT_EQ(std::to_integer<int>(out[3]), 0x04);
    EXPECT_EQ(std::to_integer<int>(out[4]), 0xa0);
    // opaque copied verbatim.
    EXPECT_EQ(std::memcmp(out + 8, opaque.data(), 8), 0);
    // zeros generated.
    for (int i = 16; i < 20; ++i) EXPECT_EQ(out[i], std::byte{0});
}

TEST(Gather, FillAcrossSegmentBoundariesInOddChunks) {
    const auto a = random_bytes(10, 2);
    const auto b = random_bytes(14, 3);
    gather_source src;
    src.add(a);
    src.add(b);
    gather_cursor cur(src);
    std::byte out[24];
    cur.fill(direct_memory{}, out, 5);
    cur.fill(direct_memory{}, out + 5, 7);
    cur.fill(direct_memory{}, out + 12, 12);
    EXPECT_EQ(std::memcmp(out, a.data(), 10), 0);
    EXPECT_EQ(std::memcmp(out + 10, b.data(), 14), 0);
}

TEST(Gather, SliceRespectsOffsets) {
    const auto data = random_bytes(32, 4);
    gather_source src;
    src.add({data.data(), 16});
    src.add_zeros(8);
    src.add({data.data() + 16, 16});
    const gather_source mid = src.slice(8, 24);  // tail of seg0, zeros, head of seg2
    EXPECT_EQ(mid.total_size(), 24u);
    gather_cursor cur(mid);
    std::byte out[24];
    cur.fill(direct_memory{}, out, 24);
    EXPECT_EQ(std::memcmp(out, data.data() + 8, 8), 0);
    for (int i = 8; i < 16; ++i) EXPECT_EQ(out[i], std::byte{0});
    EXPECT_EQ(std::memcmp(out + 16, data.data() + 16, 8), 0);
}

TEST(Scatter, DrainRoutesAndDiscards) {
    std::uint32_t host_words[2] = {0, 0};
    byte_buffer opaque(8);
    scatter_dest dst;
    dst.add({reinterpret_cast<std::byte*>(host_words), 8},
            segment_op::xdr_words);
    dst.add(opaque.span());
    dst.add_discard(4);

    // Wire image: two BE words + 8 opaque bytes + 4 padding bytes.
    std::byte wire[20];
    store_be32(wire, 0x11223344u);
    store_be32(wire + 4, 0x55667788u);
    const auto payload = random_bytes(8, 5);
    std::memcpy(wire + 8, payload.data(), 8);
    std::memset(wire + 16, 0xee, 4);

    scatter_cursor cur(dst);
    cur.drain(direct_memory{}, wire, 20);
    EXPECT_EQ(host_words[0], 0x11223344u);
    EXPECT_EQ(host_words[1], 0x55667788u);
    EXPECT_EQ(std::memcmp(opaque.data(), payload.data(), 8), 0);
}

TEST(GatherScatter, RoundTripThroughWireForm) {
    // marshal (gather) then unmarshal (scatter) restores the application
    // data exactly, including int fields on either endianness.
    const std::uint32_t ints_in[3] = {1, 0xdeadbeefu, 42};
    const auto opaque_in = random_bytes(12, 6);
    gather_source src;
    src.add({reinterpret_cast<const std::byte*>(ints_in), 12},
            segment_op::xdr_words);
    src.add(opaque_in);

    byte_buffer wire(24);
    gather_cursor in(src);
    in.fill(direct_memory{}, wire.data(), 24);

    std::uint32_t ints_out[3] = {};
    byte_buffer opaque_out(12);
    scatter_dest dst;
    dst.add({reinterpret_cast<std::byte*>(ints_out), 12},
            segment_op::xdr_words);
    dst.add(opaque_out.span());
    scatter_cursor out(dst);
    out.drain(direct_memory{}, wire.data(), 24);

    EXPECT_EQ(std::memcmp(ints_in, ints_out, 12), 0);
    EXPECT_EQ(std::memcmp(opaque_in.data(), opaque_out.data(), 12), 0);
}

// ---------------------------------------------------------------------------
// fused pipeline

TEST(FusedPipeline, UnitBytesIsLcmWithLs) {
    EXPECT_EQ((fused_pipeline<checksum_tap8>::unit_bytes), 8u);
    EXPECT_EQ((fused_pipeline<>::unit_bytes), 8u);  // Ls alone
    EXPECT_EQ((fused_pipeline<xdr_encode_stage>::unit_bytes), 8u);
    using enc = encrypt_stage<safer_simplified>;
    EXPECT_EQ((fused_pipeline<enc, checksum_tap2>::unit_bytes), 8u);
}

TEST(FusedPipeline, OrderingConstraintPropagates) {
    EXPECT_FALSE((fused_pipeline<xdr_encode_stage, checksum_tap8>::
                      ordering_constrained));
    EXPECT_TRUE((fused_pipeline<crc32_tap>::ordering_constrained));
}

TEST(FusedPipeline, EncryptChecksumCopyMatchesLayeredPath) {
    // The central equivalence: the fused ILP loop must produce byte-for-byte
    // the same wire data and the same checksum as the layered non-ILP
    // implementation.
    const auto key = test_key();
    const safer_simplified cipher(key);
    const auto payload = random_bytes(256, 7);
    direct_memory mem;

    // Layered: marshal pass, encrypt pass (in place), checksum pass.
    byte_buffer staged(256);
    marshal_to_buffer(mem, span_source(payload), staged.span());
    encrypt_stage<safer_simplified> enc_stage(cipher);
    apply_stage_in_place(mem, enc_stage, staged.span());
    inet_accumulator layered_acc;
    checksum_pass(mem, layered_acc, staged.span());

    // Fused: one loop.
    byte_buffer fused_out(256);
    inet_accumulator fused_acc;
    encrypt_stage<safer_simplified> enc2(cipher);
    checksum_tap8 tap(fused_acc);
    auto pipe = make_pipeline(enc2, tap);
    pipe.run(mem, span_source(payload), span_dest(fused_out.span()));

    EXPECT_EQ(std::memcmp(staged.data(), fused_out.data(), 256), 0);
    EXPECT_EQ(layered_acc.finish(), fused_acc.finish());
}

TEST(FusedPipeline, DecryptInverseRestoresPayload) {
    const auto key = test_key();
    const safer_simplified cipher(key);
    const auto payload = random_bytes(128, 8);
    direct_memory mem;

    byte_buffer wire(128);
    encrypt_stage<safer_simplified> enc(cipher);
    auto enc_pipe = make_pipeline(enc);
    enc_pipe.run(mem, span_source(payload), span_dest(wire.span()));

    byte_buffer restored(128);
    decrypt_stage<safer_simplified> dec(cipher);
    auto dec_pipe = make_pipeline(dec);
    dec_pipe.run(mem, span_source(wire.span()), span_dest(restored.span()));

    EXPECT_EQ(std::memcmp(restored.data(), payload.data(), 128), 0);
}

TEST(FusedPipeline, OutOfOrderPartsMatchLinearProcessing) {
    // Paper §3.2.2: with non-ordering-constrained stages, processing parts
    // B, C, A out of order yields the same wire bytes and checksum as a
    // straight linear pass.
    const auto key = test_key();
    const safer_simplified cipher(key);
    const auto message = random_bytes(96, 9);
    direct_memory mem;

    byte_buffer linear_out(96);
    inet_accumulator linear_acc;
    {
        encrypt_stage<safer_simplified> enc(cipher);
        checksum_tap8 tap(linear_acc);
        auto pipe = make_pipeline(enc, tap);
        pipe.run(mem, span_source(message), span_dest(linear_out.span()));
    }

    byte_buffer parts_out(96);
    inet_accumulator parts_acc;
    {
        encrypt_stage<safer_simplified> enc(cipher);
        checksum_tap8 tap(parts_acc);
        auto pipe = make_pipeline(enc, tap);
        static_assert(!decltype(pipe)::ordering_constrained);
        const message_plan plan = plan_parts(90);  // pads to 96
        const gather_source whole = span_source(message);
        const scatter_dest whole_dst = span_dest(parts_out.span());
        for (const message_part& part : plan.ilp_order()) {
            if (part.empty()) continue;
            const gather_source part_src = whole.slice(part.offset, part.len);
            const scatter_dest part_dst = whole_dst.slice(part.offset, part.len);
            pipe.run(mem, part_src, part_dst);
        }
    }

    EXPECT_EQ(std::memcmp(linear_out.data(), parts_out.data(), 96), 0);
    EXPECT_EQ(linear_acc.finish(), parts_acc.finish());
}

TEST(FusedPipeline, RingDestinationHandlesWrap) {
    const auto payload = random_bytes(64, 10);
    ring_buffer ring(96);
    // Push+release to force the next reservation to wrap.
    ring.push(random_bytes(80, 11));
    ring.release(80);
    const ring_span reservation = ring.reserve(64);
    ASSERT_FALSE(reservation.second.empty());  // really wraps

    direct_memory mem;
    fused_pipeline<> copy_pipe;
    copy_pipe.run(mem, span_source(payload), ring_dest(reservation));
    ring.commit(64);

    std::vector<std::byte> out(64);
    ring.copy_out(0, out);
    EXPECT_EQ(out, payload);
}

TEST(FusedPipeline, ChainSourceFeedsWrappedRingPeekThroughLoop) {
    // The zero-copy receive shape: a fused loop pulling straight from a
    // two-piece ring view (the loan datagram_pipe hands out), no staging
    // copy in between.
    const auto payload = random_bytes(64, 12);
    ring_buffer ring(96);
    ring.push(random_bytes(80, 13));
    ring.release(80);
    ring.push(payload);
    const const_ring_span view = ring.peek(0, 64);
    ASSERT_FALSE(view.second.empty());  // really wraps

    direct_memory mem;
    fused_pipeline<> copy_pipe;
    std::vector<std::byte> out(64);
    copy_pipe.run(mem, chain_source(view), span_dest(out));
    EXPECT_EQ(out, payload);

    // Slicing the chain source cuts at logical offsets across the wrap.
    const gather_source src = chain_source(view);
    std::vector<std::byte> tail(24);
    copy_pipe.run(mem, src.slice(40, 24), span_dest(tail));
    EXPECT_EQ(tail, std::vector<std::byte>(payload.begin() + 40,
                                           payload.end()));
}

TEST(FusedPipeline, IlpReducesMemoryAccessesVsLayered) {
    // The paper's headline effect (Fig. 13): the fused loop reads the data
    // once and writes it once, while the layered path pays a read+write per
    // layer.  Verify with exact simulated counts.
    const auto key = test_key();
    const safer_simplified cipher(key);
    constexpr std::size_t n = 1024;
    const auto payload = random_bytes(n, 12);

    memsim::memory_system sys(memsim::supersparc_with_l2());
    sim_memory mem(sys);

    // Layered: marshal (r+w) + encrypt (r+w) + checksum (r).
    byte_buffer staged(n);
    marshal_to_buffer(mem, span_source(payload), staged.span());
    encrypt_stage<safer_simplified> enc(cipher);
    apply_stage_in_place(mem, enc, staged.span());
    inet_accumulator acc;
    checksum_pass(mem, acc, staged.span());
    const std::uint64_t layered_ops = sys.data_stats().total_accesses();
    const std::uint64_t layered_bytes =
        sys.data_stats().reads.total_bytes() +
        sys.data_stats().writes.total_bytes();

    sys.reset(true);
    byte_buffer out(n);
    inet_accumulator acc2;
    encrypt_stage<safer_simplified> enc2(cipher);
    checksum_tap8 tap(acc2);
    auto pipe = make_pipeline(enc2, tap);
    pipe.run(mem, span_source(payload), span_dest(out.span()));
    const std::uint64_t fused_ops = sys.data_stats().total_accesses();
    const std::uint64_t fused_bytes = sys.data_stats().reads.total_bytes() +
                                      sys.data_stats().writes.total_bytes();

    EXPECT_EQ(acc.finish(), acc2.finish());
    EXPECT_EQ(std::memcmp(staged.data(), out.data(), n), 0);

    // Cipher table/key traffic (2 one-byte reads per byte) is identical in
    // both; the packet-data traffic drops from 3 reads + 2 writes to
    // 1 read + 1 write of n bytes each.
    EXPECT_EQ(layered_bytes - fused_bytes, 3 * n);
    EXPECT_LT(fused_ops, layered_ops);
}

// ---------------------------------------------------------------------------
// dynamic pipeline and word filters

TEST(DynamicPipeline, MatchesFusedResult) {
    const auto key = test_key();
    const safer_simplified cipher(key);
    const auto payload = random_bytes(256, 13);
    direct_memory mem;

    byte_buffer fused_out(256);
    inet_accumulator fused_acc;
    encrypt_stage<safer_simplified> enc(cipher);
    checksum_tap8 tap(fused_acc);
    auto pipe = make_pipeline(enc, tap);
    pipe.run(mem, span_source(payload), span_dest(fused_out.span()));

    byte_buffer dyn_out(256);
    inet_accumulator dyn_acc;
    encrypt_stage<safer_simplified> enc2(cipher);
    checksum_tap8 tap2(dyn_acc);
    dynamic_pipeline<direct_memory> dyn;
    dyn.add_stage(enc2);
    dyn.add_stage(tap2);
    EXPECT_EQ(dyn.unit_bytes(), 8u);
    dyn.run(mem, span_source(payload), span_dest(dyn_out.span()));

    EXPECT_EQ(std::memcmp(fused_out.data(), dyn_out.data(), 256), 0);
    EXPECT_EQ(fused_acc.finish(), dyn_acc.finish());
}

TEST(WordFilter, ChainMatchesFusedPipeline) {
    const auto key = test_key();
    const safer_simplified cipher(key);
    const auto payload = random_bytes(128, 14);
    direct_memory mem;

    byte_buffer fused_out(128);
    inet_accumulator fused_acc;
    encrypt_stage<safer_simplified> enc(cipher);
    checksum_tap8 tap(fused_acc);
    auto pipe = make_pipeline(enc, tap);
    pipe.run(mem, span_source(payload), span_dest(fused_out.span()));

    byte_buffer filter_out(128);
    inet_accumulator filter_acc;
    cipher_word_filter<direct_memory, safer_simplified, true> enc_filter(cipher);
    checksum_word_filter<direct_memory> sum_filter(filter_acc);
    sink_word_filter<direct_memory> sink(filter_out.span());
    enc_filter.set_next(&sum_filter);
    sum_filter.set_next(&sink);
    feed_words(mem, enc_filter, payload);

    EXPECT_EQ(sink.bytes_written(), 128u);
    EXPECT_EQ(std::memcmp(fused_out.data(), filter_out.data(), 128), 0);
    EXPECT_EQ(fused_acc.finish(), filter_acc.finish());
}

TEST(WordFilter, WordHandoffDoublesStores) {
    // Paper §2.2's exact example: 4-byte word handoff issues two stores per
    // 8-byte cipher block where the LCM-unit loop issues one.
    const auto key = test_key();
    const safer_simplified cipher(key);
    constexpr std::size_t n = 512;
    const auto payload = random_bytes(n, 15);

    memsim::memory_system sys(memsim::test_tiny());
    sim_memory mem(sys);

    byte_buffer filter_out(n);
    cipher_word_filter<sim_memory, safer_simplified, true> enc_filter(cipher);
    sink_word_filter<sim_memory> sink(filter_out.span());
    enc_filter.set_next(&sink);
    feed_words(mem, enc_filter, payload);
    const std::uint64_t filter_stores =
        sys.data_stats().writes.total_accesses();

    sys.reset(true);
    byte_buffer fused_out(n);
    encrypt_stage<safer_simplified> enc(cipher);
    auto pipe = make_pipeline(enc);
    pipe.run(mem, span_source(payload), span_dest(fused_out.span()));
    const std::uint64_t fused_stores =
        sys.data_stats().writes.total_accesses();

    EXPECT_EQ(std::memcmp(filter_out.data(), fused_out.data(), n), 0);
    EXPECT_EQ(filter_stores, n / 4);  // one store per word
    EXPECT_EQ(fused_stores, n / 8);   // one store per Le unit
}

// ---------------------------------------------------------------------------
// three-stage model

TEST(ThreeStage, InitialRejectionSkipsLoopAndFinal) {
    bool loop_ran = false;
    bool final_ran = false;
    const auto verdict = run_three_stage(
        [] { return std::optional<int>(); },  // demux failure
        [&](int) {
            loop_ran = true;
            return 0;
        },
        [&](int, int) {
            final_ran = true;
            return final_verdict::accept;
        });
    EXPECT_FALSE(verdict.has_value());
    EXPECT_FALSE(loop_ran);
    EXPECT_FALSE(final_ran);
}

TEST(ThreeStage, FinalStageSeesLoopResult) {
    const auto verdict = run_three_stage(
        [] { return std::optional<int>(7); },
        [](int plan) { return plan * 6; },
        [](int plan, int result) {
            EXPECT_EQ(plan, 7);
            EXPECT_EQ(result, 42);
            return result == 42 ? final_verdict::accept
                                : final_verdict::reject;
        });
    ASSERT_TRUE(verdict.has_value());
    EXPECT_EQ(*verdict, final_verdict::accept);
}

}  // namespace
}  // namespace ilp::core
