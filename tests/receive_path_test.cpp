// Direct unit tests of the receive-side data paths: every rejection branch
// must still return the correct full-ciphertext checksum (so TCP can
// verdict the segment), and both implementations must agree bit-for-bit.
#include <gtest/gtest.h>

#include <cstring>

#include "app/receive_path.h"
#include "app/send_path.h"
#include "crypto/safer_simplified.h"
#include "memsim/configs.h"
#include "rpc/messages.h"
#include "util/endian.h"
#include "util/rng.h"

namespace ilp::app {
namespace {

using memsim::direct_memory;

struct fixture {
    std::array<std::byte, 8> key;
    crypto::safer_simplified cipher;
    std::vector<std::byte> payload;
    byte_buffer wire;
    rpc::reply_layout layout;

    explicit fixture(std::size_t payload_bytes = 200)
        : key(make_key()),
          cipher(key),
          payload(payload_bytes),
          wire(rpc::layout_reply(payload_bytes).wire_bytes),
          layout(rpc::layout_reply(payload_bytes)) {
        rng r(7);
        r.fill(payload);
        rpc::reply_header header;
        header.request_id = 9;
        header.copy_index = 0;
        header.offset = 0;
        header.total_bytes = static_cast<std::uint32_t>(payload_bytes);
        rpc::reply_staging staging;
        const auto src = rpc::make_reply_source(header, payload, staging);
        core::encrypt_stage<crypto::safer_simplified> enc(cipher);
        auto pipe = core::make_pipeline(enc);
        pipe.run(direct_memory{}, src, core::span_dest(wire.span()));
    }

    static std::array<std::byte, 8> make_key() {
        std::array<std::byte, 8> k;
        rng r(1);
        r.fill(k);
        return k;
    }

    // Reference checksum of the (possibly mutated) ciphertext.
    std::uint16_t wire_sum() const {
        checksum::inet_accumulator acc;
        acc.add_bytes(direct_memory{}, wire.span(), 2);
        return acc.folded();
    }
};

template <typename Path>
tcp::rx_process_result run_path(fixture& f, Path&& path,
                                std::span<std::byte> dest,
                                rpc::reply_header* header_out,
                                path_counters& counters) {
    const auto resolve = [&](const rpc::reply_header&,
                             std::size_t n) -> std::span<std::byte> {
        return dest.size() >= n ? dest.subspan(0, n) : std::span<std::byte>{};
    };
    return path(direct_memory{}, f.cipher, f.wire.span(), resolve, header_out,
                counters);
}

auto ilp_path = [](auto&&... args) {
    return receive_reply_ilp(std::forward<decltype(args)>(args)...);
};
auto layered_path = [](auto&&... args) {
    return receive_reply_layered(std::forward<decltype(args)>(args)...);
};

TEST(ReceivePath, HappyPathBothModes) {
    for (const bool use_ilp : {true, false}) {
        fixture f;
        byte_buffer dest(f.payload.size());
        rpc::reply_header header;
        path_counters counters;
        const std::uint16_t expected_sum = f.wire_sum();
        const auto result =
            use_ilp ? run_path(f, ilp_path, dest.span(), &header, counters)
                    : run_path(f, layered_path, dest.span(), &header, counters);
        EXPECT_TRUE(result.ok);
        EXPECT_EQ(result.payload_sum, expected_sum);
        EXPECT_EQ(header.request_id, 9u);
        EXPECT_EQ(std::memcmp(dest.data(), f.payload.data(), f.payload.size()),
                  0);
        EXPECT_EQ(counters.messages, 1u);
        EXPECT_EQ(counters.payload_bytes, f.payload.size());
    }
}

TEST(ReceivePath, CorruptLengthFieldRejectsButChecksumStaysRight) {
    for (const bool use_ilp : {true, false}) {
        fixture f;
        // Flip ciphertext bits in the first block (where the length lives);
        // decryption now yields garbage length.
        f.wire.data()[1] ^= std::byte{0x5a};
        const std::uint16_t expected_sum = f.wire_sum();
        byte_buffer dest(f.payload.size());
        path_counters counters;
        const auto result =
            use_ilp
                ? run_path(f, ilp_path, dest.span(), nullptr, counters)
                : run_path(f, layered_path, dest.span(), nullptr, counters);
        EXPECT_FALSE(result.ok) << (use_ilp ? "ilp" : "layered");
        // The checksum must cover the *whole* (corrupt) ciphertext so the
        // TCP final stage can reject the segment properly.
        EXPECT_EQ(result.payload_sum, expected_sum);
    }
}

TEST(ReceivePath, ResolverRejectionFailsCleanly) {
    for (const bool use_ilp : {true, false}) {
        fixture f;
        const std::uint16_t expected_sum = f.wire_sum();
        path_counters counters;
        const auto reject_all = [](const rpc::reply_header&,
                                   std::size_t) -> std::span<std::byte> {
            return {};
        };
        const auto result =
            use_ilp ? receive_reply_ilp(direct_memory{}, f.cipher,
                                        f.wire.span(), reject_all, nullptr,
                                        counters)
                    : receive_reply_layered(direct_memory{}, f.cipher,
                                            f.wire.span(), reject_all, nullptr,
                                            counters);
        EXPECT_FALSE(result.ok);
        EXPECT_EQ(result.payload_sum, expected_sum);
        EXPECT_EQ(counters.messages, 0u);
    }
}

TEST(ReceivePath, RuntAndUnalignedWiresFail) {
    for (const bool use_ilp : {true, false}) {
        fixture f;
        path_counters counters;
        byte_buffer dest(16);
        // Runt: shorter than the minimum reply.
        auto short_span = f.wire.subspan(0, 16);
        const auto resolve = [&](const rpc::reply_header&,
                                 std::size_t) -> std::span<std::byte> {
            return dest.span();
        };
        const auto result =
            use_ilp ? receive_reply_ilp(direct_memory{}, f.cipher, short_span,
                                        resolve, nullptr, counters)
                    : receive_reply_layered(direct_memory{}, f.cipher,
                                            short_span, resolve, nullptr,
                                            counters);
        EXPECT_FALSE(result.ok);
    }
}

TEST(ReceivePath, IlpAndLayeredAgreeOnEveryBitAndCounter) {
    fixture f1(333), f2(333);
    byte_buffer dest1(333), dest2(333);
    rpc::reply_header h1, h2;
    path_counters c1, c2;
    const auto r1 = run_path(f1, ilp_path, dest1.span(), &h1, c1);
    const auto r2 = run_path(f2, layered_path, dest2.span(), &h2, c2);
    EXPECT_EQ(r1.ok, r2.ok);
    EXPECT_EQ(r1.payload_sum, r2.payload_sum);
    EXPECT_EQ(std::memcmp(dest1.data(), dest2.data(), 333), 0);
    EXPECT_EQ(h1.offset, h2.offset);
    // ILP does everything in the fused loop; layered in separate passes.
    EXPECT_GT(c1.fused_loop_bytes, 0u);
    EXPECT_EQ(c1.cipher_pass_bytes, 0u);
    EXPECT_EQ(c2.fused_loop_bytes, 0u);
    EXPECT_GT(c2.cipher_pass_bytes, 0u);
    EXPECT_GT(c2.checksum_pass_bytes, 0u);
}

// Stages a wire image as a two-piece chain split at `split` bytes,
// mimicking the ring-wrap loan datagram_pipe hands out (the arena's tail
// holds the first piece, its head the second).
struct chain_stage {
    byte_buffer arena;
    const_ring_span chain;

    chain_stage(std::span<const std::byte> wire, std::size_t split)
        : arena(wire.size() + 32) {
        std::byte* a = arena.data() + arena.size() - split;
        std::memcpy(a, wire.data(), split);
        std::memcpy(arena.data(), wire.data() + split, wire.size() - split);
        chain.first = {a, split};
        chain.second = {arena.data(), wire.size() - split};
    }
};

TEST(ReceivePath, ChainMatchesSpanBitForBitAtManySplits) {
    fixture span_f(200);
    byte_buffer dest_s(200);
    rpc::reply_header h_s;
    path_counters c_s;
    const auto r_s = run_path(span_f, ilp_path, dest_s.span(), &h_s, c_s);
    ASSERT_TRUE(r_s.ok);

    const std::size_t wire_bytes = span_f.wire.size();
    const std::size_t splits[] = {1,  3,  5,  8,  21, 24, 32,
                                  wire_bytes / 2 + 1, wire_bytes - 3,
                                  wire_bytes - 1};
    for (const std::size_t split : splits) {
        fixture f(200);
        chain_stage st(f.wire.span(), split);
        byte_buffer dest(200);
        rpc::reply_header h;
        path_counters c;
        const auto resolve = [&](const rpc::reply_header&,
                                 std::size_t n) -> std::span<std::byte> {
            return dest.span().subspan(0, n);
        };
        const auto r = receive_reply_ilp(direct_memory{}, f.cipher, st.chain,
                                         resolve, &h, c);
        EXPECT_EQ(r.ok, r_s.ok) << "split=" << split;
        EXPECT_EQ(r.payload_sum, r_s.payload_sum) << "split=" << split;
        EXPECT_EQ(std::memcmp(dest.data(), dest_s.data(), 200), 0)
            << "split=" << split;
        EXPECT_EQ(h.request_id, h_s.request_id);
        EXPECT_EQ(h.offset, h_s.offset);
        EXPECT_EQ(c.messages, c_s.messages);
        EXPECT_EQ(c.payload_bytes, c_s.payload_bytes);
        EXPECT_EQ(c.fused_loop_bytes, c_s.fused_loop_bytes);
        EXPECT_EQ(c.checksum_pass_bytes, c_s.checksum_pass_bytes);
        EXPECT_EQ(c.cipher_pass_bytes, c_s.cipher_pass_bytes);
    }
}

TEST(ReceivePath, ChainRejectionMatchesSpanChecksum) {
    // A corrupted wire must be rejected with the same full-ciphertext
    // checksum whether it arrives contiguous or as a wrap-straddling chain.
    fixture span_f(200);
    span_f.wire.data()[1] ^= std::byte{0x5a};
    path_counters c_s;
    byte_buffer dest_s(200);
    const auto r_s = run_path(span_f, ilp_path, dest_s.span(), nullptr, c_s);
    ASSERT_FALSE(r_s.ok);

    fixture f(200);
    f.wire.data()[1] ^= std::byte{0x5a};
    chain_stage st(f.wire.span(), 13);
    path_counters c;
    byte_buffer dest(200);
    const auto resolve = [&](const rpc::reply_header&,
                             std::size_t n) -> std::span<std::byte> {
        return dest.span().subspan(0, n);
    };
    const auto r = receive_reply_ilp(direct_memory{}, f.cipher, st.chain,
                                     resolve, nullptr, c);
    EXPECT_FALSE(r.ok);
    EXPECT_EQ(r.payload_sum, r_s.payload_sum);
    EXPECT_EQ(c.checksum_pass_bytes, c_s.checksum_pass_bytes);
}

TEST(ReceivePath, SimulatedIlpTouchesLessMemory) {
    fixture f1(996), f2(996);
    memsim::memory_system sys1(memsim::supersparc_with_l2());
    memsim::memory_system sys2(memsim::supersparc_with_l2());
    byte_buffer dest1(996), dest2(996);
    path_counters c1, c2;
    const auto resolve1 = [&](const rpc::reply_header&,
                              std::size_t n) -> std::span<std::byte> {
        return dest1.subspan(0, n);
    };
    const auto resolve2 = [&](const rpc::reply_header&,
                              std::size_t n) -> std::span<std::byte> {
        return dest2.subspan(0, n);
    };
    const auto r1 =
        receive_reply_ilp(memsim::sim_memory(sys1), f1.cipher, f1.wire.span(),
                          resolve1, nullptr, c1);
    const auto r2 = receive_reply_layered(memsim::sim_memory(sys2), f2.cipher,
                                          f2.wire.span(), resolve2, nullptr,
                                          c2);
    ASSERT_TRUE(r1.ok && r2.ok);
    EXPECT_LT(sys1.data_stats().total_accesses(),
              sys2.data_stats().total_accesses());
    // The layered path reads the wire 3x (checksum, decrypt, unmarshal) and
    // writes it once; ILP reads once.  Difference ~= 3 passes of ~1 KB.
    const std::uint64_t diff = sys2.data_stats().reads.total_bytes() -
                               sys1.data_stats().reads.total_bytes();
    EXPECT_GE(diff, 2u * 1000);
}

}  // namespace
}  // namespace ilp::app
