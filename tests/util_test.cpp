// Unit tests for the util module: endian helpers, alignment/unit math,
// deterministic RNG, virtual clock, fixed_vector and hexdump.
#include <gtest/gtest.h>

#include <cstring>
#include <set>

#include "util/alignment.h"
#include "util/endian.h"
#include "util/fixed_vector.h"
#include "util/hexdump.h"
#include "util/json.h"
#include "util/rng.h"
#include "util/virtual_clock.h"

namespace ilp {
namespace {

TEST(Endian, Be16RoundTrip) {
    std::byte buf[2];
    store_be16(buf, 0xbeef);
    EXPECT_EQ(std::to_integer<int>(buf[0]), 0xbe);
    EXPECT_EQ(std::to_integer<int>(buf[1]), 0xef);
    EXPECT_EQ(load_be16(buf), 0xbeef);
}

TEST(Endian, Be32RoundTrip) {
    std::byte buf[4];
    store_be32(buf, 0x01020304u);
    EXPECT_EQ(std::to_integer<int>(buf[0]), 0x01);
    EXPECT_EQ(std::to_integer<int>(buf[3]), 0x04);
    EXPECT_EQ(load_be32(buf), 0x01020304u);
}

TEST(Endian, Be64RoundTrip) {
    std::byte buf[8];
    store_be64(buf, 0x0102030405060708ull);
    EXPECT_EQ(std::to_integer<int>(buf[0]), 0x01);
    EXPECT_EQ(std::to_integer<int>(buf[7]), 0x08);
    EXPECT_EQ(load_be64(buf), 0x0102030405060708ull);
}

TEST(Endian, ByteswapInvolution) {
    EXPECT_EQ(byteswap32(byteswap32(0xdeadbeefu)), 0xdeadbeefu);
    EXPECT_EQ(byteswap16(byteswap16(0x1234)), 0x1234);
    EXPECT_EQ(byteswap64(byteswap64(0x123456789abcdef0ull)),
              0x123456789abcdef0ull);
    EXPECT_EQ(byteswap32(0x01020304u), 0x04030201u);
}

TEST(Endian, HostToBeMatchesStore) {
    // host_to_be32 must produce the same byte image store_be32 writes.
    const std::uint32_t v = 0xcafef00du;
    std::byte via_store[4];
    store_be32(via_store, v);
    const std::uint32_t converted = host_to_be32(v);
    std::byte via_memcpy[4];
    std::memcpy(via_memcpy, &converted, 4);
    EXPECT_EQ(std::memcmp(via_store, via_memcpy, 4), 0);
}

TEST(Alignment, AlignUpDown) {
    EXPECT_EQ(align_up(0, 8), 0u);
    EXPECT_EQ(align_up(1, 8), 8u);
    EXPECT_EQ(align_up(8, 8), 8u);
    EXPECT_EQ(align_up(9, 8), 16u);
    EXPECT_EQ(align_down(15, 8), 8u);
    EXPECT_EQ(align_down(16, 8), 16u);
    EXPECT_TRUE(is_aligned(24, 8));
    EXPECT_FALSE(is_aligned(25, 8));
    EXPECT_EQ(padding_for(13, 8), 3u);
    EXPECT_EQ(padding_for(16, 8), 0u);
}

TEST(Alignment, ExchangeUnitLcm) {
    // The paper's examples: encryption 8, checksum 2 -> exchange in 8s.
    EXPECT_EQ(exchange_unit(8, 2), 8u);
    EXPECT_EQ(exchange_unit(4, 8), 8u);
    EXPECT_EQ(exchange_unit(4, 6), 12u);
    // Folding in the system parameter Ls.
    EXPECT_EQ(exchange_unit(4, 2, 8), 8u);
    EXPECT_EQ(exchange_unit_of(4, 8, 2), 8u);
    EXPECT_EQ(exchange_unit_of(), 1u);
    EXPECT_EQ(exchange_unit_of(3, 5), 15u);
}

TEST(Rng, Deterministic) {
    rng a(42), b(42), c(43);
    EXPECT_EQ(a.next_u64(), b.next_u64());
    EXPECT_EQ(a.next_u64(), b.next_u64());
    rng a2(42);
    EXPECT_NE(a2.next_u64(), c.next_u64());
}

TEST(Rng, BelowBound) {
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        EXPECT_LT(r.next_below(17), 17u);
    }
    // All residues eventually hit.
    std::set<std::uint64_t> seen;
    for (int i = 0; i < 1000; ++i) seen.insert(r.next_below(8));
    EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, FillCoversWholeSpan) {
    rng r(9);
    std::byte buf[37];
    std::memset(buf, 0, sizeof buf);
    r.fill(buf);
    int nonzero = 0;
    for (const auto b : buf) nonzero += b != std::byte{0};
    EXPECT_GT(nonzero, 20);  // overwhelmingly likely for random bytes
}

TEST(Rng, DoubleInUnitInterval) {
    rng r(11);
    for (int i = 0; i < 1000; ++i) {
        const double d = r.next_double();
        EXPECT_GE(d, 0.0);
        EXPECT_LT(d, 1.0);
    }
}

TEST(VirtualClock, FiresInDeadlineOrder) {
    virtual_clock clock;
    std::vector<int> order;
    clock.schedule_at(30, [&] { order.push_back(3); });
    clock.schedule_at(10, [&] { order.push_back(1); });
    clock.schedule_at(20, [&] { order.push_back(2); });
    clock.advance(25);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
    EXPECT_EQ(clock.now(), 25u);
    clock.advance(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(VirtualClock, CancelPreventsFiring) {
    virtual_clock clock;
    int fired = 0;
    const auto token = clock.schedule_at(5, [&] { ++fired; });
    EXPECT_TRUE(clock.cancel(token));
    EXPECT_FALSE(clock.cancel(token));  // already cancelled
    clock.advance(10);
    EXPECT_EQ(fired, 0);
}

TEST(VirtualClock, TimerSchedulingTimer) {
    virtual_clock clock;
    std::vector<sim_time> fire_times;
    clock.schedule_at(10, [&] {
        fire_times.push_back(clock.now());
        clock.schedule_after(5, [&] { fire_times.push_back(clock.now()); });
    });
    clock.advance(100);
    ASSERT_EQ(fire_times.size(), 2u);
    EXPECT_EQ(fire_times[0], 10u);
    EXPECT_EQ(fire_times[1], 15u);
}

TEST(VirtualClock, SameDeadlineFiresInScheduleOrder) {
    virtual_clock clock;
    std::vector<int> order;
    clock.schedule_at(10, [&] { order.push_back(1); });
    clock.schedule_at(10, [&] { order.push_back(2); });
    clock.advance(10);
    EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(VirtualClock, PendingTimerCount) {
    virtual_clock clock;
    EXPECT_EQ(clock.pending_timers(), 0u);
    clock.schedule_at(10, [] {});
    clock.schedule_at(20, [] {});
    EXPECT_EQ(clock.pending_timers(), 2u);
    clock.advance(15);
    EXPECT_EQ(clock.pending_timers(), 1u);
}

TEST(VirtualClockDeath, RewindViolatesMonotonicityContract) {
    virtual_clock clock;
    clock.advance(100);
    EXPECT_DEATH(clock.advance_to(50), "deadline_us >= now_us_");
}

TEST(VirtualClockDeath, OverflowingAdvanceAborts) {
    virtual_clock clock;
    clock.advance(100);
    EXPECT_DEATH(clock.advance(~sim_time{0}), "delta_us <=");
}

TEST(Json, ParsesScalars) {
    EXPECT_TRUE(json::parse("null")->is_null());
    EXPECT_TRUE(json::parse("true")->as_bool());
    EXPECT_FALSE(json::parse("false")->as_bool(true));
    EXPECT_DOUBLE_EQ(json::parse("-12.5e2")->as_number(), -1250.0);
    EXPECT_EQ(*json::parse("\"hi\"")->as_string(), "hi");
}

TEST(Json, ParsesNestedStructures) {
    const auto doc = json::parse(
        R"({"bench": "fig08", "metrics": [{"name": "a", "value": 1.5}],)"
        R"( "ok": true})");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(doc->string_at("bench"), "fig08");
    EXPECT_TRUE(doc->find("ok")->as_bool());
    const json::array* metrics = doc->find("metrics")->as_array();
    ASSERT_NE(metrics, nullptr);
    ASSERT_EQ(metrics->size(), 1u);
    EXPECT_EQ((*metrics)[0].string_at("name"), "a");
    EXPECT_DOUBLE_EQ((*metrics)[0].number_at("value"), 1.5);
}

TEST(Json, DecodesStringEscapes) {
    const auto doc = json::parse(R"("a\"b\\c\ndA\u00e9")");
    ASSERT_TRUE(doc.has_value());
    EXPECT_EQ(*doc->as_string(), "a\"b\\c\nd"
                                 "A\xc3\xa9");
}

TEST(Json, RejectsMalformedInput) {
    EXPECT_FALSE(json::parse("").has_value());
    EXPECT_FALSE(json::parse("{").has_value());
    EXPECT_FALSE(json::parse("[1,]").has_value());
    EXPECT_FALSE(json::parse("{\"a\" 1}").has_value());
    EXPECT_FALSE(json::parse("12 garbage").has_value());
    EXPECT_FALSE(json::parse("\"unterminated").has_value());
    std::string deep;
    for (int i = 0; i < 100; ++i) deep += "[";
    EXPECT_FALSE(json::parse(deep).has_value());  // depth limit
}

TEST(Json, LookupFallbacks) {
    const auto doc = json::parse(R"({"n": 3})");
    EXPECT_EQ(doc->find("missing"), nullptr);
    EXPECT_DOUBLE_EQ(doc->number_at("missing", -1.0), -1.0);
    EXPECT_EQ(doc->string_at("n", "fallback"), "fallback");  // wrong type
    EXPECT_EQ(json::parse("[]")->find("k"), nullptr);  // not an object
}

TEST(FixedVector, PushAndIterate) {
    fixed_vector<int, 4> v;
    EXPECT_TRUE(v.empty());
    v.push_back(1);
    v.push_back(2);
    v.push_back(3);
    EXPECT_EQ(v.size(), 3u);
    EXPECT_FALSE(v.full());
    int sum = 0;
    for (const int x : v) sum += x;
    EXPECT_EQ(sum, 6);
    EXPECT_EQ(v.back(), 3);
    v.push_back(4);
    EXPECT_TRUE(v.full());
    v.clear();
    EXPECT_TRUE(v.empty());
}

TEST(Hexdump, FormatsOffsetsHexAndAscii) {
    const char* text = "Hello, ILP!";
    const std::string dump =
        hexdump({reinterpret_cast<const std::byte*>(text), 11});
    EXPECT_NE(dump.find("00000000"), std::string::npos);
    EXPECT_NE(dump.find("48 65 6c 6c 6f"), std::string::npos);
    EXPECT_NE(dump.find("|Hello, ILP!|"), std::string::npos);
}

TEST(Hexdump, ToHex) {
    const std::byte data[] = {std::byte{0xde}, std::byte{0xad},
                              std::byte{0xbe}, std::byte{0xef}};
    EXPECT_EQ(to_hex(data), "deadbeef");
    EXPECT_EQ(to_hex({}), "");
}

}  // namespace
}  // namespace ilp
