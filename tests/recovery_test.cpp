// End-to-end failure recovery: the fault *plan* (burst loss, outages,
// truncation, finite kernel queue), TCP failure signalling (RST, reset,
// persist probes, hostile ACKs) and RPC-level retry with resumable
// transfers.  The chaos matrix at the bottom is the subsystem's contract:
// every transfer either completes byte-verified or reports an explicit
// failure — it never hangs until the deadline.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "app/harness.h"
#include "checksum/internet_checksum.h"
#include "crypto/safer_simplified.h"
#include "memsim/mem_policy.h"
#include "net/datagram.h"
#include "tcp/connection.h"
#include "tcp/header.h"
#include "util/rng.h"

namespace ilp {
namespace {

using memsim::direct_memory;
using namespace ilp::tcp;

// ---------------------------------------------------------------------------
// Fault plan (net layer)

std::vector<std::byte> pattern(std::size_t n) {
    std::vector<std::byte> v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = static_cast<std::byte>(i);
    return v;
}

TEST(FaultPlan, OutageWindowDropsEverythingInside) {
    virtual_clock clock;
    net::fault_config faults;
    faults.outages.push_back({1000, 2000});
    net::datagram_pipe pipe(clock, 10, faults);
    std::size_t delivered = 0;
    pipe.set_receiver([&](std::span<const std::byte>) { ++delivered; });

    const auto msg = pattern(64);
    pipe.send(direct_memory{}, msg);  // t = 0: before the outage
    clock.advance(1500);              // t = 1500: inside
    pipe.send(direct_memory{}, msg);
    clock.advance(1000);              // t = 2500: after
    pipe.send(direct_memory{}, msg);
    clock.advance(100);

    EXPECT_EQ(delivered, 2u);
    EXPECT_EQ(pipe.stats().packets_outage_dropped, 1u);
    EXPECT_EQ(pipe.stats().packets_dropped, 1u);
}

TEST(FaultPlan, FiniteQueueTailDrops) {
    virtual_clock clock;
    net::fault_config faults;
    faults.max_queue_packets = 2;
    net::datagram_pipe pipe(clock, 100, faults);
    std::size_t delivered = 0;
    pipe.set_receiver([&](std::span<const std::byte>) { ++delivered; });

    const auto msg = pattern(32);
    for (int i = 0; i < 5; ++i) pipe.send(direct_memory{}, msg);
    clock.advance(200);

    EXPECT_EQ(delivered, 2u);
    EXPECT_EQ(pipe.stats().packets_queue_dropped, 3u);
    EXPECT_EQ(pipe.stats().packets_dropped, 3u);
}

TEST(FaultPlan, TruncationDeliversProperPrefix) {
    virtual_clock clock;
    net::fault_config faults;
    faults.truncate_probability = 1.0;
    faults.seed = 42;
    net::datagram_pipe pipe(clock, 0, faults);
    std::vector<std::byte> received;
    pipe.set_receiver([&](std::span<const std::byte> p) {
        received.assign(p.begin(), p.end());
    });

    const auto msg = pattern(100);
    pipe.send(direct_memory{}, msg);
    clock.advance(1);

    ASSERT_FALSE(received.empty());
    EXPECT_LT(received.size(), msg.size());
    EXPECT_EQ(std::memcmp(received.data(), msg.data(), received.size()), 0);
    EXPECT_EQ(pipe.stats().packets_truncated, 1u);
}

TEST(FaultPlan, GilbertElliottBurstsAreCorrelated) {
    virtual_clock clock;
    net::fault_config faults;
    faults.burst.enabled = true;
    faults.burst.p_good_to_bad = 0.1;
    faults.burst.p_bad_to_good = 0.3;
    faults.burst.good_loss = 0.0;
    faults.burst.bad_loss = 1.0;
    faults.seed = 7;
    net::datagram_pipe pipe(clock, 0, faults);
    // Record the per-packet loss pattern to measure correlation.
    std::vector<bool> lost;
    bool delivered = false;
    pipe.set_receiver([&](std::span<const std::byte>) { delivered = true; });
    const auto msg = pattern(16);
    constexpr int packets = 2000;
    for (int i = 0; i < packets; ++i) {
        delivered = false;
        pipe.send(direct_memory{}, msg);
        clock.advance(1);
        lost.push_back(!delivered);
    }
    const auto& s = pipe.stats();
    EXPECT_EQ(s.packets_dropped, s.packets_burst_dropped);
    EXPECT_GT(s.packets_dropped, 0u);
    EXPECT_LT(s.packets_dropped, static_cast<std::uint64_t>(packets));
    // Correlation: P(loss | previous loss) must far exceed the marginal
    // loss rate — that is the whole point of the two-state model.
    int loss_after_loss = 0;
    int losses = 0;
    for (int i = 1; i < packets; ++i) {
        if (lost[i - 1]) {
            ++losses;
            if (lost[i]) ++loss_after_loss;
        }
    }
    ASSERT_GT(losses, 0);
    const double conditional =
        static_cast<double>(loss_after_loss) / static_cast<double>(losses);
    const double marginal =
        static_cast<double>(s.packets_dropped) / static_cast<double>(packets);
    EXPECT_GT(conditional, marginal * 1.5);
}

TEST(FaultPlan, ExtendedPlanReplaysBitForBit) {
    // The whole point of a seeded fault plan: two pipes with the same plan
    // observe identical loss/truncation sequences.
    net::fault_config faults;
    faults.drop_probability = 0.05;
    faults.truncate_probability = 0.1;
    faults.burst.enabled = true;
    faults.burst.p_good_to_bad = 0.05;
    faults.burst.p_bad_to_good = 0.3;
    faults.burst.bad_loss = 0.9;
    faults.max_queue_packets = 4;
    faults.seed = 99;

    std::vector<std::size_t> sizes_a;
    std::vector<std::size_t> sizes_b;
    for (auto* sizes : {&sizes_a, &sizes_b}) {
        virtual_clock clock;
        net::datagram_pipe pipe(clock, 5, faults);
        pipe.set_receiver([sizes](std::span<const std::byte> p) {
            sizes->push_back(p.size());
        });
        const auto msg = pattern(200);
        for (int i = 0; i < 400; ++i) {
            pipe.send(direct_memory{}, msg);
            clock.advance(3);
        }
        clock.advance(100);
    }
    EXPECT_FALSE(sizes_a.empty());
    EXPECT_EQ(sizes_a, sizes_b);
}

// ---------------------------------------------------------------------------
// TCP failure signalling

// Endpoint pair over a duplex link with a trivial data path, mirroring the
// harness in tcp_extra_test.
struct pair {
    virtual_clock clock;
    net::duplex_link link;
    tcp_sender<direct_memory> sender;
    tcp_receiver<direct_memory> receiver;
    std::size_t accepted = 0;
    int failures_signalled = 0;

    explicit pair(connection_config cfg, net::fault_config forward = {},
                  net::fault_config reverse = {})
        : link(clock, 100, forward, reverse),
          sender(direct_memory{}, clock, link.forward(), cfg),
          receiver(direct_memory{}, clock, link.reverse(), mirrored(cfg)) {
        link.forward().set_receiver(
            [this](std::span<const std::byte> p) { receiver.on_packet(p); });
        link.reverse().set_receiver(
            [this](std::span<const std::byte> p) { sender.on_ack_packet(p); });
        receiver.set_processor([](std::span<std::byte> payload) {
            checksum::inet_accumulator acc;
            acc.add_bytes(direct_memory{}, payload, 2);
            return rx_process_result{acc.folded(), true};
        });
        receiver.set_accept_handler([this](std::size_t) { ++accepted; });
        receiver.set_failure_handler([this] { ++failures_signalled; });
    }

    bool send(std::size_t n, std::uint64_t seed) {
        std::vector<std::byte> msg(n);
        rng r(seed);
        r.fill(msg);
        return sender.send_message(n, [&](const ring_span& dst) {
            std::memcpy(dst.first.data(), msg.data(), dst.first.size());
            if (!dst.second.empty()) {
                std::memcpy(dst.second.data(), msg.data() + dst.first.size(),
                            dst.second.size());
            }
            return std::optional<std::uint16_t>();
        });
    }

    void settle(sim_time max_us = 10'000'000) {
        const sim_time deadline = clock.now() + max_us;
        while (!sender.idle() && !sender.failed() && clock.now() < deadline) {
            clock.advance(500);
        }
    }

    // An ACK as the peer would produce it, with a *valid* checksum.
    std::vector<std::byte> craft_ack(std::uint32_t ack, std::uint16_t window) {
        const connection_config cfg;  // pair tests keep default ports/addrs
        header_fields h;
        h.src_port = cfg.remote_port;
        h.dst_port = cfg.local_port;
        h.ack = ack;
        h.control = flags::ack;
        h.window = window;
        std::vector<std::byte> pkt(header_bytes);
        serialize_header(h, pkt);
        h.checksum = finish_segment_checksum(cfg.remote_addr, cfg.local_addr,
                                             pkt, 0, 0);
        serialize_header(h, pkt);
        return pkt;
    }
};

TEST(TcpFailure, SenderGiveUpEmitsRstAndReceiverLearns) {
    connection_config cfg;
    cfg.rto_us = 5'000;
    cfg.max_retries = 2;
    net::fault_config reverse;  // all ACKs lost: the sender must give up
    reverse.drop_probability = 1.0;
    pair p(cfg, {}, reverse);

    ASSERT_TRUE(p.send(100, 1));
    for (int i = 0; i < 20 && !p.sender.failed(); ++i) p.clock.advance(5'000);
    p.clock.advance(1'000);  // let the RST cross the link

    EXPECT_TRUE(p.sender.failed());
    EXPECT_EQ(p.sender.stats().rsts_sent, 1u);
    EXPECT_TRUE(p.receiver.peer_failed());
    EXPECT_EQ(p.receiver.stats().rsts_received, 1u);
    EXPECT_EQ(p.failures_signalled, 1);
}

TEST(TcpFailure, ResetReestablishesAfterFailure) {
    connection_config cfg;
    cfg.rto_us = 5'000;
    cfg.max_retries = 1;
    pair p(cfg);
    // Sabotage: swallow ACKs by replacing the reverse receiver.
    p.link.reverse().set_receiver([](std::span<const std::byte>) {});
    ASSERT_TRUE(p.send(64, 2));
    for (int i = 0; i < 10 && !p.sender.failed(); ++i) p.clock.advance(5'000);
    p.clock.advance(1'000);  // let the RST cross the link
    ASSERT_TRUE(p.sender.failed());
    ASSERT_TRUE(p.receiver.peer_failed());

    // Both endpoints rewind to an agreed ISN; traffic flows again.
    p.link.reverse().set_receiver(
        [&p](std::span<const std::byte> pk) { p.sender.on_ack_packet(pk); });
    p.sender.reset(5'000'000);
    p.receiver.reset(5'000'000);
    EXPECT_FALSE(p.sender.failed());
    EXPECT_FALSE(p.receiver.peer_failed());
    ASSERT_TRUE(p.send(64, 3));
    p.settle();
    EXPECT_TRUE(p.sender.idle());
    EXPECT_EQ(p.accepted, 2u);  // the pre-failure delivery plus this one
    EXPECT_EQ(p.sender.stats().resets, 1u);
    EXPECT_EQ(p.receiver.stats().resets, 1u);
}

TEST(TcpFailure, RstWithBadChecksumIsIgnored) {
    connection_config cfg;
    pair p(cfg);
    header_fields h;
    h.src_port = cfg.remote_port;
    h.dst_port = cfg.local_port;
    h.control = flags::rst;
    std::byte wire[header_bytes];
    serialize_header(h, wire);  // checksum field left zero: invalid
    p.receiver.on_packet({wire, header_bytes});
    EXPECT_FALSE(p.receiver.peer_failed());
    EXPECT_EQ(p.receiver.stats().rsts_received, 0u);
    EXPECT_EQ(p.receiver.stats().header_failures, 1u);
}

// Regression for the abort-on-untrusted-input bug: a crafted, checksum-valid
// ACK for data never sent (a corrupted packet whose 16-bit checksum
// collides, or a forgery) used to trip ILP_EXPECT and abort the process.
TEST(TcpHostile, CraftedFutureAckIsCountedNotFatal) {
    connection_config cfg;
    pair p(cfg);
    ASSERT_TRUE(p.send(100, 4));

    const auto forged = p.craft_ack(p.sender.next_seq() + 4096, 16384);
    p.sender.on_ack_packet(forged);

    EXPECT_EQ(p.sender.stats().bad_acks, 1u);
    EXPECT_FALSE(p.sender.idle());  // nothing was released
    p.settle();
    EXPECT_TRUE(p.sender.idle());  // the genuine ACK still lands
    EXPECT_EQ(p.accepted, 1u);
}

// ---------------------------------------------------------------------------
// Sender flow-control edges

TEST(TcpFlowControl, RingFullBlocksUntilAcked) {
    connection_config cfg;
    cfg.send_buffer_bytes = 1024;
    pair p(cfg);
    ASSERT_TRUE(p.send(512, 5));
    ASSERT_TRUE(p.send(512, 6));   // retransmission ring now full
    EXPECT_FALSE(p.send(512, 7));  // blocked: no buffer space
    EXPECT_EQ(p.sender.stats().send_blocked, 1u);
    p.settle();
    ASSERT_TRUE(p.sender.idle());  // ACKs released the ring
    EXPECT_TRUE(p.send(512, 7));
}

TEST(TcpFlowControl, AckCarriedWindowCloseAndReopen) {
    connection_config cfg;
    pair p(cfg);
    ASSERT_TRUE(p.send(256, 8));
    const std::uint32_t acked = p.sender.next_seq();
    p.sender.on_ack_packet(p.craft_ack(acked, 0));  // all acked, window 0
    ASSERT_TRUE(p.sender.idle());
    EXPECT_EQ(p.sender.sendable_bytes(), 0u);
    EXPECT_FALSE(p.send(256, 9));  // zero window blocks the send
    EXPECT_EQ(p.sender.stats().send_blocked, 1u);
    // A (duplicate) ACK reopening the window unblocks it.
    p.sender.on_ack_packet(p.craft_ack(acked, 8192));
    EXPECT_GT(p.sender.sendable_bytes(), 0u);
    EXPECT_TRUE(p.send(256, 9));
}

TEST(TcpFlowControl, ZeroWindowPersistProbeUnwedgesTheSender) {
    // A peer advertising window 0 with nothing in flight used to wedge the
    // sender permanently: no outstanding data means no RTO, and no traffic
    // means no ACK would ever re-open the window.  The persist probe breaks
    // the cycle end to end.
    connection_config cfg;
    cfg.rto_us = 10'000;
    pair p(cfg);
    ASSERT_TRUE(p.send(128, 10));
    p.settle();
    ASSERT_TRUE(p.sender.idle());

    p.sender.on_ack_packet(p.craft_ack(p.sender.next_seq(), 0));
    EXPECT_EQ(p.sender.sendable_bytes(), 0u);

    // The probe reaches the real receiver, whose ACK re-advertises its
    // actual window, restoring service.
    for (int i = 0; i < 40 && p.sender.sendable_bytes() == 0; ++i) {
        p.clock.advance(5'000);
    }
    EXPECT_GT(p.sender.stats().window_probes, 0u);
    EXPECT_GT(p.sender.sendable_bytes(), 0u);
    EXPECT_TRUE(p.send(128, 11));
    p.settle();
    EXPECT_TRUE(p.sender.idle());
    EXPECT_EQ(p.accepted, 2u);
}

// ---------------------------------------------------------------------------
// RPC-level retry + resume (application layer, full stack)

using crypto::safer_simplified;

app::transfer_config base_config() {
    app::transfer_config config;
    config.file_bytes = 12 * 1024;
    config.packet_wire_bytes = 512;
    config.retry.response_timeout_us = 2'000'000;
    config.retry.max_attempts = 5;
    return config;
}

TEST(Recovery, OutageMidTransferIsResumedNotRestarted) {
    app::transfer_config config = base_config();
    // Big enough that the transfer is mid-flight when the reply link dies;
    // the outage outlasts TCP's give-up point (8 retries x 200 ms), so
    // recovery must come from the RPC layer.
    config.file_bytes = 128 * 1024;
    config.forward_faults.outages.push_back({1'000, 3'000'000});
    const auto result = app::run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_GE(result.recovery.rpc_retries, 1u);
    EXPECT_GE(result.recovery.connection_resets, 2u);
    EXPECT_GE(result.recovery.rsts_sent, 1u);
    // Resume, not restart: the re-served portion stays far below the file.
    EXPECT_LT(result.recovery.refetched_bytes, config.file_bytes / 2);
}

TEST(Recovery, BlackoutFailsExplicitlyBeforeDeadline) {
    app::transfer_config config = base_config();
    config.forward_faults.outages.push_back(
        {0, 1'000'000'000'000ull});  // permanent
    const auto result = app::run_transfer_native<safer_simplified>(config);
    EXPECT_FALSE(result.completed);
    EXPECT_TRUE(result.recovery.gave_up);
    EXPECT_EQ(result.recovery.rpc_retries, config.retry.max_attempts - 1);
    EXPECT_LT(result.elapsed_us, config.deadline_us);
}

TEST(Recovery, RequestLinkFailureIsAlsoRecovered) {
    app::transfer_config config = base_config();
    config.file_bytes = 4 * 1024;
    // The *request* link (not the reply link) blacks out long enough for
    // the client's request sender to give up, then comes back.
    config.request_forward_faults.outages.push_back({0, 2'200'000});
    const auto result = app::run_transfer_native<safer_simplified>(config);
    ASSERT_TRUE(result.completed);
    EXPECT_TRUE(result.verified);
    EXPECT_GE(result.recovery.rpc_retries, 1u);
}

// The chaos matrix: every fault plan here must end in one of exactly two
// states — byte-verified completion, or an explicit reported failure —
// well before the harness deadline.  Hanging until the deadline without a
// recorded recovery attempt is the failure mode this subsystem removes.
struct chaos_scenario {
    const char* name;
    void (*apply)(app::transfer_config&);
};

const chaos_scenario chaos_matrix[] = {
    {"clean", [](app::transfer_config&) {}},
    {"bernoulli",
     [](app::transfer_config& c) {
         c.forward_faults.drop_probability = 0.1;
         c.reverse_faults.drop_probability = 0.05;
     }},
    {"burst",
     [](app::transfer_config& c) {
         c.forward_faults.burst.enabled = true;
         c.forward_faults.burst.p_good_to_bad = 0.05;
         c.forward_faults.burst.p_bad_to_good = 0.25;
         c.forward_faults.burst.bad_loss = 0.95;
     }},
    {"outage",
     [](app::transfer_config& c) {
         c.file_bytes = 96 * 1024;  // still mid-flight at t = 1 ms
         c.forward_faults.outages.push_back({1'000, 2'500'000});
     }},
    {"repeated_outage",
     [](app::transfer_config& c) {
         c.file_bytes = 128 * 1024;
         c.forward_faults.outages.push_back({1'000, 2'500'000});
         c.forward_faults.outages.push_back({3'000'000, 4'500'000});
     }},
    {"truncating",
     [](app::transfer_config& c) {
         c.forward_faults.truncate_probability = 0.2;
     }},
    {"queue_overflow",
     [](app::transfer_config& c) {
         c.forward_faults.max_queue_packets = 2;
     }},
    {"blackout",
     [](app::transfer_config& c) {
         c.forward_faults.outages.push_back({0, 1'000'000'000'000ull});
     }},
    {"kitchen_sink",
     [](app::transfer_config& c) {
         c.forward_faults.burst.enabled = true;
         c.forward_faults.burst.p_good_to_bad = 0.05;
         c.forward_faults.burst.p_bad_to_good = 0.3;
         c.forward_faults.burst.bad_loss = 0.9;
         c.forward_faults.truncate_probability = 0.05;
         c.forward_faults.duplicate_probability = 0.05;
         c.forward_faults.corrupt_probability = 0.05;
         c.forward_faults.max_queue_packets = 16;
         c.reverse_faults.drop_probability = 0.05;
         c.request_forward_faults.drop_probability = 0.05;
         c.request_reverse_faults.drop_probability = 0.05;
     }},
};

class ChaosMatrix
    : public ::testing::TestWithParam<std::tuple<int, app::path_mode>> {};

TEST_P(ChaosMatrix, CompletesVerifiedOrFailsExplicitly) {
    const auto& [index, mode] = GetParam();
    const chaos_scenario& s = chaos_matrix[index];
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
        app::transfer_config config = base_config();
        config.mode = mode;
        s.apply(config);
        config.forward_faults.seed = seed;
        config.reverse_faults.seed = seed + 100;
        config.request_forward_faults.seed = seed + 200;
        config.request_reverse_faults.seed = seed + 300;

        const auto result = app::run_transfer_native<safer_simplified>(config);
        if (result.completed) {
            EXPECT_TRUE(result.verified) << s.name << " seed " << seed;
        } else {
            // Explicit failure, reported by the retry machinery — never a
            // silent deadline expiry with no recovery attempt recorded.
            EXPECT_TRUE(result.recovery.gave_up) << s.name << " seed " << seed;
            EXPECT_GT(result.recovery.rpc_retries, 0u)
                << s.name << " seed " << seed;
            EXPECT_LT(result.elapsed_us, config.deadline_us)
                << s.name << " seed " << seed;
        }
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllPlans, ChaosMatrix,
    ::testing::Combine(::testing::Range(0, 9),
                       ::testing::Values(app::path_mode::ilp,
                                         app::path_mode::layered)),
    [](const ::testing::TestParamInfo<std::tuple<int, app::path_mode>>& p) {
        return std::string(chaos_matrix[std::get<0>(p.param)].name) +
               (std::get<1>(p.param) == app::path_mode::ilp ? "_ilp"
                                                            : "_layered");
    });

}  // namespace
}  // namespace ilp
